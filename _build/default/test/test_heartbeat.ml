(* Reproduction tests: parameters, the §6.2 bound analysis, the paper's
   Tables 1 and 2, the fixed versions, the counterexample figures, the
   component LTS figures, deadlock freedom, and agreement of the two
   formalisms. *)

let check = Alcotest.check
module H = Heartbeat

(* --- parameters --- *)

let test_params_validation () =
  Alcotest.check_raises "tmin 0"
    (Invalid_argument "Heartbeat.Params: tmin must be positive") (fun () ->
      ignore (H.Params.make ~tmin:0 ~tmax:5 ()));
  Alcotest.check_raises "tmax < tmin"
    (Invalid_argument "Heartbeat.Params: tmax must be >= tmin") (fun () ->
      ignore (H.Params.make ~tmin:5 ~tmax:4 ()));
  Alcotest.check_raises "n 0"
    (Invalid_argument "Heartbeat.Params: n must be >= 1") (fun () ->
      ignore (H.Params.make ~n:0 ~tmin:1 ~tmax:2 ()))

let test_params_predicates () =
  let p = H.Params.make ~tmin:4 ~tmax:10 () in
  check Alcotest.bool "usual" true (H.Params.usual p);
  check Alcotest.bool "not degenerate" false (H.Params.degenerate p);
  check Alcotest.int "p1 timeout" 26 (H.Params.p1_timeout p);
  let q = H.Params.make ~tmin:10 ~tmax:10 () in
  check Alcotest.bool "degenerate" true (H.Params.degenerate q)

(* --- bounds (§6.2) --- *)

let test_bounds_examples () =
  let p tmin tmax = H.Params.make ~tmin ~tmax () in
  (* 2*tmin <= tmax: corrected bound is 3*tmax - tmin *)
  check Alcotest.int "corrected (1,10)" 29 (H.Bounds.p0_detection (p 1 10));
  check Alcotest.int "corrected (5,10)" 25 (H.Bounds.p0_detection (p 5 10));
  (* 2*tmin > tmax: original 2*tmax is correct *)
  check Alcotest.int "corrected (9,10)" 20 (H.Bounds.p0_detection (p 9 10));
  check Alcotest.int "worst (1,10)" 28 (H.Bounds.p0_detection_exhaustive (p 1 10));
  check Alcotest.int "worst (4,10)" 25 (H.Bounds.p0_detection_exhaustive (p 4 10));
  check Alcotest.int "worst (9,10)" 20 (H.Bounds.p0_detection_exhaustive (p 9 10));
  check Alcotest.(list int) "halving schedule" [ 10; 5 ]
    (H.Bounds.halving_schedule (p 4 10));
  check Alcotest.int "pi tight" 20 (H.Bounds.pi_waiting (p 4 10));
  check Alcotest.int "join bound" 24 (H.Bounds.pi_join_waiting (p 4 10))

let bounds_params =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "(tmin=%d, tmax=%d)" a b)
    QCheck.Gen.(
      map2
        (fun tmax d -> (max 1 (tmax - d), tmax))
        (int_range 1 60) (int_range 0 60))

let prop_exhaustive_below_closed_form =
  QCheck.Test.make ~name:"halving worst case is within the corrected bound"
    ~count:500 bounds_params (fun (tmin, tmax) ->
      let p = H.Params.make ~tmin ~tmax () in
      H.Bounds.p0_detection_exhaustive p <= H.Bounds.p0_detection p)

let prop_violation_regime =
  QCheck.Test.make
    ~name:"the 2*tmax claim is beaten exactly when 2*tmin <= tmax" ~count:500
    bounds_params (fun (tmin, tmax) ->
      let p = H.Params.make ~tmin ~tmax () in
      let beats_claim =
        H.Bounds.p0_detection_exhaustive p > H.Bounds.original_p0_claim p
      in
      beats_claim = (2 * tmin <= tmax))

let prop_halving_schedule_sound =
  QCheck.Test.make ~name:"halving schedule is decreasing and >= tmin"
    ~count:500 bounds_params (fun (tmin, tmax) ->
      let p = H.Params.make ~tmin ~tmax () in
      let s = H.Bounds.halving_schedule p in
      let rec decreasing = function
        | a :: (b :: _ as rest) -> a > b && decreasing rest
        | _ -> true
      in
      List.for_all (fun t -> t >= tmin) s
      && decreasing s
      && match s with t :: _ -> t = tmax | [] -> tmax < tmin)

(* --- Tables 1 and 2 --- *)

let row tmin tmax r1 r2 r3 = { H.Verify.tmin; tmax; r1; r2; r3 }

(* Paper Table 1: verification of (revised) binary and static. *)
let paper_table1 =
  [
    row 1 10 false true true;
    row 4 10 false true true;
    row 5 10 false true true;
    row 9 10 true true true;
    row 10 10 true false false;
  ]

(* Paper Table 2: expanding and dynamic. *)
let paper_table2 =
  [
    row 1 10 false true true;
    row 4 10 false true true;
    row 5 10 false false true;
    row 9 10 true false true;
    row 10 10 true false false;
  ]

let row_testable =
  Alcotest.testable
    (fun ppf (r : H.Verify.row) ->
      Format.fprintf ppf "(%d,%d) R1=%b R2=%b R3=%b" r.H.Verify.tmin
        r.H.Verify.tmax r.H.Verify.r1 r.H.Verify.r2 r.H.Verify.r3)
    ( = )

let table_matches variant expected () =
  let rows = H.Verify.table variant in
  check (Alcotest.list row_testable)
    (H.Ta_models.variant_name variant)
    expected rows

let test_two_phase_table () =
  (* The paper leaves two-phase's p[0]-inactivation rule unspecified
     (footnote 2).  With our documented choice — inactivate on a missed
     reply once t is already tmin — detection takes 2*tmax + tmin, so R1
     additionally fails at (9,10); R2/R3 match the binary results. *)
  let expected =
    [
      row 1 10 false true true;
      row 4 10 false true true;
      row 5 10 false true true;
      row 9 10 false true true;
      row 10 10 true false false;
    ]
  in
  check (Alcotest.list row_testable) "two-phase" expected
    (H.Verify.table H.Ta_models.Two_phase)

let fixed_all_hold variant () =
  List.iter
    (fun (r : H.Verify.row) ->
      let name =
        Printf.sprintf "%s fixed (%d,%d)"
          (H.Ta_models.variant_name variant)
          r.H.Verify.tmin r.H.Verify.tmax
      in
      check Alcotest.bool (name ^ " R1") true r.H.Verify.r1;
      check Alcotest.bool (name ^ " R2") true r.H.Verify.r2;
      check Alcotest.bool (name ^ " R3") true r.H.Verify.r3)
    (H.Verify.table ~fixed:true variant)

(* --- counterexample figures --- *)

let test_fig10a () =
  let s = H.Scenarios.fig10a () in
  let last = H.Scenarios.last_event s in
  check Alcotest.string "watchdog error" "errorR1_1" last.H.Scenarios.action;
  check Alcotest.int "past the claimed bound" 21 last.H.Scenarios.time

let test_fig11 () =
  let s = H.Scenarios.fig11 () in
  (* No loss and no crash anywhere in the violating run. *)
  check Alcotest.bool "no loss" false (H.Scenarios.has_action s "lose0_1");
  check Alcotest.bool "no loss'" false (H.Scenarios.has_action s "lose1_1");
  check Alcotest.bool "no crash p0" false (H.Scenarios.has_action s "crash_p0");
  check Alcotest.bool "no crash p1" false (H.Scenarios.has_action s "crash_p1");
  let last = H.Scenarios.last_event s in
  check Alcotest.string "p1 inactivated" "inactivate_nv_p1"
    last.H.Scenarios.action;
  (* at exactly 3*tmax - tmin = 20 *)
  check Alcotest.int "at the timeout" 20 last.H.Scenarios.time

let test_fig12 () =
  let s = H.Scenarios.fig12 () in
  check Alcotest.bool "no loss" false
    (H.Scenarios.has_action s "lose0_1" || H.Scenarios.has_action s "lose1_1");
  let last = H.Scenarios.last_event s in
  check Alcotest.string "p0 inactivated" "inactivate_nv_p0"
    last.H.Scenarios.action;
  check Alcotest.int "at 2*tmax" 20 last.H.Scenarios.time

let test_fig13 () =
  let s = H.Scenarios.fig13 () in
  check Alcotest.bool "join request sent" true (H.Scenarios.has_action s "join1");
  check Alcotest.bool "no loss" false
    (H.Scenarios.has_action s "lose0_1" || H.Scenarios.has_action s "lose1_1");
  let last = H.Scenarios.last_event s in
  check Alcotest.string "joiner inactivated" "inactivate_nv_p1"
    last.H.Scenarios.action;
  (* at the joining timeout 3*tmax - tmin = 2*tmax + tmin = 25 *)
  check Alcotest.int "at the join deadline" 25 last.H.Scenarios.time

(* --- deadlock freedom of the models --- *)

let test_deadlock_free () =
  List.iter
    (fun variant ->
      List.iter
        (fun (tmin, tmax) ->
          let params = H.Params.make ~tmin ~tmax () in
          check Alcotest.bool
            (Printf.sprintf "%s (%d,%d)"
               (H.Ta_models.variant_name variant)
               tmin tmax)
            true
            (H.Verify.deadlock_free variant params);
          check Alcotest.bool
            (Printf.sprintf "%s fixed (%d,%d)"
               (H.Ta_models.variant_name variant)
               tmin tmax)
            true
            (H.Verify.deadlock_free ~fixed:true variant params))
        [ (1, 3); (3, 3); (2, 4) ])
    H.Ta_models.all_variants

(* --- the two formalisms agree --- *)

let test_pa_ta_agree () =
  List.iter
    (fun (pv, tv) ->
      List.iter
        (fun (tmin, tmax) ->
          let params = H.Params.make ~tmin ~tmax () in
          List.iter
            (fun req ->
              let pa = H.Pa_verify.check pv params req in
              let ta = (H.Verify.check tv params req).H.Verify.holds in
              check Alcotest.bool
                (Printf.sprintf "%s (%d,%d) %s"
                   (H.Pa_models.variant_name pv)
                   tmin tmax (H.Requirements.name req))
                ta pa)
            H.Requirements.all)
        [ (1, 2); (2, 2); (1, 3); (3, 3); (2, 4) ])
    [
      (H.Pa_models.Binary, H.Ta_models.Binary);
      (H.Pa_models.Revised, H.Ta_models.Revised);
      (H.Pa_models.Two_phase, H.Ta_models.Two_phase);
      (H.Pa_models.Static, H.Ta_models.Static);
      (H.Pa_models.Expanding, H.Ta_models.Expanding);
      (H.Pa_models.Dynamic, H.Ta_models.Dynamic);
    ]

let test_pa_table2_expanding_r2 () =
  (* The PA encoding independently reproduces the R2 row of Table 2 for
     the expanding protocol: the join race appears iff 2*tmin >= tmax. *)
  List.iter2
    (fun (tmin, tmax) (expected : H.Verify.row) ->
      let params = H.Params.make ~tmin ~tmax () in
      check Alcotest.bool
        (Printf.sprintf "R2 (%d,%d)" tmin tmax)
        expected.H.Verify.r2
        (H.Pa_verify.check ~max_states:8_000_000 H.Pa_models.Expanding params
           H.Requirements.R2))
    H.Params.table_datasets paper_table2

let test_pa_table1_binary () =
  (* The process-algebra encoding reproduces Table 1 for the binary
     protocol on the paper's own data sets. *)
  List.iter2
    (fun (tmin, tmax) (expected : H.Verify.row) ->
      let params = H.Params.make ~tmin ~tmax () in
      let got req = H.Pa_verify.check H.Pa_models.Binary params req in
      check Alcotest.bool
        (Printf.sprintf "R1 (%d,%d)" tmin tmax)
        expected.H.Verify.r1 (got H.Requirements.R1);
      check Alcotest.bool
        (Printf.sprintf "R2 (%d,%d)" tmin tmax)
        expected.H.Verify.r2 (got H.Requirements.R2);
      check Alcotest.bool
        (Printf.sprintf "R3 (%d,%d)" tmin tmax)
        expected.H.Verify.r3 (got H.Requirements.R3))
    H.Params.table_datasets paper_table1

(* --- multi-party static protocol --- *)

let test_static_two_participants () =
  (* With two participants and small constants the static protocol shows
     the same violation pattern: R2/R3 fail only in the degenerate
     regime. *)
  let degenerate = H.Params.make ~n:2 ~tmin:3 ~tmax:3 () in
  check Alcotest.bool "R2 degenerate" false
    (H.Verify.check H.Ta_models.Static degenerate H.Requirements.R2).H.Verify.holds;
  check Alcotest.bool "R3 degenerate" false
    (H.Verify.check H.Ta_models.Static degenerate H.Requirements.R3).H.Verify.holds;
  let usual = H.Params.make ~n:2 ~tmin:1 ~tmax:3 () in
  check Alcotest.bool "R2 usual" true
    (H.Verify.check H.Ta_models.Static usual H.Requirements.R2).H.Verify.holds;
  check Alcotest.bool "R3 usual" true
    (H.Verify.check H.Ta_models.Static usual H.Requirements.R3).H.Verify.holds;
  check Alcotest.bool "R1 usual fails" false
    (H.Verify.check H.Ta_models.Static usual H.Requirements.R1).H.Verify.holds;
  (* And the fixed version passes everything. *)
  List.iter
    (fun req ->
      check Alcotest.bool
        ("fixed n=2 " ^ H.Requirements.name req)
        true
        (H.Verify.check ~fixed:true H.Ta_models.Static degenerate req)
          .H.Verify.holds)
    H.Requirements.all

(* --- model-measured worst-case detection --- *)

let test_worst_detection_matches_analysis () =
  (* The smallest watchdog bound under which R1 holds, binary-searched on
     the model, equals the closed-form worst case of the halving
     schedule. *)
  List.iter
    (fun (tmin, tmax) ->
      let params = H.Params.make ~tmin ~tmax () in
      check Alcotest.int
        (Printf.sprintf "binary (%d,%d)" tmin tmax)
        (H.Bounds.p0_detection_exhaustive params)
        (H.Verify.worst_detection H.Ta_models.Binary params))
    [ (1, 4); (2, 6); (3, 8); (4, 10); (10, 10) ];
  (* Two-phase: drop-to-tmin gives 2*tmax + tmin. *)
  let params = H.Params.make ~tmin:3 ~tmax:8 () in
  check Alcotest.int "two-phase (3,8)" 19
    (H.Verify.worst_detection H.Ta_models.Two_phase params)

(* --- non-zenoness (CTL) --- *)

let test_non_zeno () =
  (* From every reachable configuration, a time step remains reachable:
     AG (EF (Can tick)).  This rules out both deadlocks and timelocks in
     the models (e.g. a watchdog refusing to tick with no action to
     take). *)
  List.iter
    (fun variant ->
      List.iter
        (fun (tmin, tmax) ->
          let params = H.Params.make ~tmin ~tmax () in
          let net =
            Ta.Semantics.compile (H.Ta_models.build variant params)
          in
          let space =
            Mc.Explore.space ~max_states:2_000_000 (Ta.Semantics.system net)
          in
          check Alcotest.bool "exploration complete" true
            space.Mc.Explore.complete;
          let tick =
            Mc.Ctl.can "tick" (fun l -> l = Ta.Semantics.Delay)
          in
          check Alcotest.bool
            (Printf.sprintf "%s (%d,%d) non-zeno"
               (H.Ta_models.variant_name variant)
               tmin tmax)
            true
            (Mc.Ctl.holds space.Mc.Explore.lts (Mc.Ctl.AG (Mc.Ctl.EF tick))))
        [ (1, 3); (3, 3) ])
    H.Ta_models.all_variants

(* --- component figures --- *)

let test_figure_lts () =
  let p = H.Params.make ~tmin:1 ~tmax:2 () in
  let raw = H.Figures.p0_component p in
  let red = H.Figures.p0_reduced p in
  check Alcotest.bool "reduction shrinks p0" true
    (Lts.Graph.num_states red < Lts.Graph.num_states raw);
  (* Figure 1 of the paper has around a dozen states. *)
  check Alcotest.bool "p0 reduced is small" true
    (Lts.Graph.num_states red <= 16);
  let red1 = H.Figures.p1_reduced p in
  check Alcotest.bool "p1 reduced is small" true
    (Lts.Graph.num_states red1 <= 12);
  (* Both keep the inactivation actions observable. *)
  let has_label g name =
    List.exists
      (fun l -> H.Figures.label_to_string l = name)
      (Lts.Graph.labels g)
  in
  check Alcotest.bool "p0 nv visible" true (has_label red "inactivate_nv_p0");
  check Alcotest.bool "p1 nv visible" true (has_label red1 "inactivate_nv_p1")

(* --- counterexample traces replay on the model --- *)

let test_counterexample_is_executable () =
  (* The trace returned for a violated requirement is an actual run of
     the model: replay it transition by transition. *)
  let params = H.Params.make ~tmin:10 ~tmax:10 () in
  let outcome = H.Verify.check H.Ta_models.Binary params H.Requirements.R3 in
  match outcome.H.Verify.counterexample with
  | None -> Alcotest.fail "expected counterexample"
  | Some trace ->
      let model = H.Ta_models.build H.Ta_models.Binary params in
      let net = Ta.Semantics.compile model in
      let step states l =
        List.concat_map
          (fun c ->
            List.filter_map
              (fun (l', c') -> if l = l' then Some c' else None)
              (Ta.Semantics.successors net c))
          states
      in
      let final = List.fold_left step [ Ta.Semantics.initial net ] trace in
      check Alcotest.bool "trace is executable" true (final <> [])

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let tests =
  ( "heartbeat",
    [
      quick "params validation" test_params_validation;
      quick "params predicates" test_params_predicates;
      quick "bounds on the paper's data sets" test_bounds_examples;
      QCheck_alcotest.to_alcotest prop_exhaustive_below_closed_form;
      QCheck_alcotest.to_alcotest prop_violation_regime;
      QCheck_alcotest.to_alcotest prop_halving_schedule_sound;
      quick "Table 1: binary" (table_matches H.Ta_models.Binary paper_table1);
      quick "Table 1: revised" (table_matches H.Ta_models.Revised paper_table1);
      quick "Table 1: static" (table_matches H.Ta_models.Static paper_table1);
      quick "two-phase table (documented deviation)" test_two_phase_table;
      slow "Table 2: expanding" (table_matches H.Ta_models.Expanding paper_table2);
      slow "Table 2: dynamic" (table_matches H.Ta_models.Dynamic paper_table2);
      quick "fixed binary holds" (fixed_all_hold H.Ta_models.Binary);
      quick "fixed revised holds" (fixed_all_hold H.Ta_models.Revised);
      quick "fixed two-phase holds" (fixed_all_hold H.Ta_models.Two_phase);
      quick "fixed static holds" (fixed_all_hold H.Ta_models.Static);
      slow "fixed expanding holds" (fixed_all_hold H.Ta_models.Expanding);
      slow "fixed dynamic holds" (fixed_all_hold H.Ta_models.Dynamic);
      quick "Figure 10a" test_fig10a;
      quick "Figure 11" test_fig11;
      quick "Figure 12" test_fig12;
      slow "Figure 13" test_fig13;
      slow "models are deadlock-free" test_deadlock_free;
      slow "models are non-zeno (AG EF tick)" test_non_zeno;
      slow "model-measured worst detection matches analysis"
        test_worst_detection_matches_analysis;
      slow "PA and TA verdicts agree" test_pa_ta_agree;
      slow "PA reproduces Table 1 (binary)" test_pa_table1_binary;
      slow "PA reproduces Table 2 R2 (expanding)" test_pa_table2_expanding_r2;
      slow "static protocol with two participants" test_static_two_participants;
      quick "component figures" test_figure_lts;
      quick "counterexamples replay" test_counterexample_is_executable;
    ] )

(* --- MSC rendering --- *)

let test_msc_columns () =
  check Alcotest.(option int) "p0 event" (Some 0) (H.Msc.column_of "timeout_p0");
  check Alcotest.(option int) "p0 beat" (Some 0) (H.Msc.column_of "beat0");
  check Alcotest.(option int) "p3 event" (Some 3)
    (H.Msc.column_of "inactivate_nv_p3");
  check Alcotest.(option int) "channel delivery" None (H.Msc.column_of "dlv0_1");
  check Alcotest.(option int) "channel loss" None (H.Msc.column_of "lose1_2")

let test_msc_render () =
  let contains chart needle =
    let n = String.length chart and m = String.length needle in
    let rec go i = i + m <= n && (String.sub chart i m = needle || go (i + 1)) in
    go 0
  in
  (* Fig 11's shortest trace ends at the violation with the beat still in
     flight: p[0] column and the violation only. *)
  let chart11 = H.Msc.render (H.Scenarios.fig11 ()) in
  check Alcotest.bool "header" true (contains chart11 "p[0]");
  check Alcotest.bool "beat shown" true (contains chart11 "beat0");
  check Alcotest.bool "violation event" true
    (contains chart11 "inactivate_nv_p1");
  check Alcotest.bool "timestamps" true (contains chart11 "t=20");
  (* Fig 13 contains actual deliveries in both directions. *)
  let chart13 = H.Msc.render (H.Scenarios.fig13 ()) in
  check Alcotest.bool "reply arrow" true (contains chart13 "<--dlv1_1--");
  check Alcotest.bool "forward arrow or absence" true
    (contains chart13 "join1")

let msc_tests =
  [
    Alcotest.test_case "msc columns" `Quick test_msc_columns;
    Alcotest.test_case "msc render" `Quick test_msc_render;
  ]

let tests = (fst tests, snd tests @ msc_tests)
