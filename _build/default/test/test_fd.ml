(* Tests for the failure-detector layer: estimators, detector semantics
   (completeness / accuracy), and the QoS trade-off. *)

let check = Alcotest.check

(* --- estimators --- *)

let test_estimator_validate () =
  Fd.Estimator.validate (Fd.Estimator.Fixed { margin = 1.0 });
  Alcotest.check_raises "margin"
    (Invalid_argument "Fd.Estimator: margin must be positive") (fun () ->
      Fd.Estimator.validate (Fd.Estimator.Fixed { margin = 0.0 }));
  Alcotest.check_raises "alpha"
    (Invalid_argument "Fd.Estimator: alpha outside (0,1]") (fun () ->
      Fd.Estimator.validate (Fd.Estimator.Ewma { alpha = 1.5; margin = 1.0 }))

let test_estimator_fixed () =
  let est = Fd.Estimator.Fixed { margin = 2.0 } in
  let st = Fd.Estimator.start est ~period:10.0 in
  check (Alcotest.float 1e-9) "initial deadline" 12.0
    (Fd.Estimator.deadline est st);
  Fd.Estimator.observe est st ~now:9.0;
  check (Alcotest.float 1e-9) "after arrival" 21.0 (Fd.Estimator.deadline est st)

let test_estimator_window_max () =
  let est = Fd.Estimator.Window_max { window = 3; margin = 1.0 } in
  let st = Fd.Estimator.start est ~period:10.0 in
  (* intervals 10, 14, 9: the window max (14) drives the deadline *)
  Fd.Estimator.observe est st ~now:10.0;
  Fd.Estimator.observe est st ~now:24.0;
  Fd.Estimator.observe est st ~now:33.0;
  check (Alcotest.float 1e-9) "adapts to worst gap" (33.0 +. 14.0 +. 1.0)
    (Fd.Estimator.deadline est st);
  (* the 14 falls out of the window after three more arrivals *)
  Fd.Estimator.observe est st ~now:43.0;
  Fd.Estimator.observe est st ~now:53.0;
  Fd.Estimator.observe est st ~now:63.0;
  check (Alcotest.float 1e-9) "window forgets" (63.0 +. 10.0 +. 1.0)
    (Fd.Estimator.deadline est st)

let test_estimator_ewma () =
  let est = Fd.Estimator.Ewma { alpha = 0.5; margin = 1.0 } in
  let st = Fd.Estimator.start est ~period:10.0 in
  Fd.Estimator.observe est st ~now:14.0;
  (* ewma = 0.5*14 + 0.5*10 = 12 *)
  check (Alcotest.float 1e-9) "smoothed" (14.0 +. 12.0 +. 1.0)
    (Fd.Estimator.deadline est st)

(* --- detector semantics --- *)

let quiet_cfg ?(probes = 0) ?(loss = 0.0) ?crash ?(seed = 3L) () =
  Fd.Detector.config ~probes ~loss ?crash ~seed ~duration:500.0 ()

let test_no_mistakes_without_loss () =
  List.iter
    (fun probes ->
      let result = Fd.Detector.run (quiet_cfg ~probes ()) in
      check Alcotest.int
        (Printf.sprintf "clean run, probes=%d" probes)
        0
        (List.length result.Fd.Detector.events))
    [ 0; 3 ]

let test_completeness () =
  (* strong completeness: a crashed process is eventually suspected and
     never trusted again — with and without probing, even under loss *)
  List.iter
    (fun (probes, loss) ->
      let cfg = quiet_cfg ~probes ~loss ~crash:(1, 100.0) () in
      let result = Fd.Detector.run cfg in
      match Fd.Detector.suspected_forever result ~who:1 ~after:100.0 with
      | Some at ->
          check Alcotest.bool
            (Printf.sprintf "detected reasonably fast (%.1f)" (at -. 100.0))
            true
            (at -. 100.0 < 60.0)
      | None -> Alcotest.fail "crash never permanently suspected")
    [ (0, 0.0); (3, 0.0); (0, 0.1); (3, 0.1) ]

let test_mistake_then_trust () =
  (* with loss and no probes, a lost heartbeat produces a suspicion that
     the next heartbeat revokes *)
  let metrics = Fd.Qos.measure (quiet_cfg ~loss:0.2 ~seed:9L ()) in
  check Alcotest.bool "some mistakes" true (metrics.Fd.Qos.mistakes > 0);
  check Alcotest.bool "availability below 1" true
    (metrics.Fd.Qos.availability < 1.0);
  check Alcotest.bool "availability sane" true
    (metrics.Fd.Qos.availability > 0.5);
  check Alcotest.bool "mistakes are short" true
    (metrics.Fd.Qos.mean_mistake_duration < 30.0)

let test_probing_reduces_mistakes () =
  let at probes =
    (Fd.Qos.measure (quiet_cfg ~probes ~loss:0.1 ~seed:21L ())).Fd.Qos.mistakes
  in
  let plain = at 0 and probed = at 3 in
  check Alcotest.bool
    (Printf.sprintf "probed (%d) < plain (%d)" probed plain)
    true (probed < plain)

let test_probing_costs_detection_time () =
  let detect probes =
    let cfg = quiet_cfg ~probes ~crash:(1, 100.0) () in
    match (Fd.Qos.measure cfg).Fd.Qos.detection_time with
    | Some d -> d
    | None -> Alcotest.fail "not detected"
  in
  check Alcotest.bool "probing is slower to condemn" true
    (detect 3 > detect 0)

let test_deterministic () =
  let cfg = quiet_cfg ~loss:0.1 ~seed:4L () in
  let a = Fd.Detector.run cfg and b = Fd.Detector.run cfg in
  check Alcotest.int "same events" (List.length a.Fd.Detector.events)
    (List.length b.Fd.Detector.events);
  check Alcotest.int "same messages" a.Fd.Detector.messages
    b.Fd.Detector.messages

let test_config_validation () =
  Alcotest.check_raises "n" (Invalid_argument "Fd.Detector: n must be >= 1")
    (fun () -> ignore (Fd.Detector.config ~n:0 ~duration:1.0 ()));
  Alcotest.check_raises "probes"
    (Invalid_argument "Fd.Detector: probes must be >= 0") (fun () ->
      ignore (Fd.Detector.config ~probes:(-1) ~duration:1.0 ()))

let test_tradeoff_monotone () =
  (* more margin: slower detection; availability weakly improves *)
  let rows = Fd.Qos.margin_sweep ~runs:15 ~margins:[ 0.5; 4.0 ] () in
  match rows with
  | [ small; large ] ->
      check Alcotest.bool "detection grows with margin" true
        (large.Fd.Qos.mean_detection > small.Fd.Qos.mean_detection);
      check Alcotest.bool "mistake rate does not grow" true
        (large.Fd.Qos.t_mistake_rate <= small.Fd.Qos.t_mistake_rate +. 1e-6)
  | _ -> Alcotest.fail "expected two rows"

let tests =
  ( "fd",
    [
      Alcotest.test_case "estimator validation" `Quick test_estimator_validate;
      Alcotest.test_case "fixed estimator" `Quick test_estimator_fixed;
      Alcotest.test_case "window-max estimator" `Quick test_estimator_window_max;
      Alcotest.test_case "ewma estimator" `Quick test_estimator_ewma;
      Alcotest.test_case "no mistakes without loss" `Quick
        test_no_mistakes_without_loss;
      Alcotest.test_case "strong completeness" `Quick test_completeness;
      Alcotest.test_case "mistakes are revoked" `Quick test_mistake_then_trust;
      Alcotest.test_case "probing reduces mistakes" `Quick
        test_probing_reduces_mistakes;
      Alcotest.test_case "probing costs detection time" `Quick
        test_probing_costs_detection_time;
      Alcotest.test_case "deterministic per seed" `Quick test_deterministic;
      Alcotest.test_case "config validation" `Quick test_config_validation;
      Alcotest.test_case "margin trade-off" `Slow test_tradeoff_monotone;
    ] )
