(* Tests for the event-driven runtime and the quantitative experiments:
   determinism, steady-state behaviour, detection bounds and loss
   robustness orderings. *)

let check = Alcotest.check
module H = Heartbeat

let params = H.Params.make ~n:1 ~tmin:2 ~tmax:10 ()

let test_deterministic_per_seed () =
  let cfg = H.Runtime.config ~kind:H.Runtime.Halving ~loss:0.1 ~seed:5L ~duration:500.0 params in
  let a = H.Runtime.run cfg and b = H.Runtime.run cfg in
  check Alcotest.int "same messages" a.H.Runtime.messages_sent
    b.H.Runtime.messages_sent;
  check Alcotest.bool "same verdict" a.H.Runtime.false_detection
    b.H.Runtime.false_detection

let test_quiet_run_stays_up () =
  List.iter
    (fun kind ->
      let cfg = H.Runtime.config ~kind ~seed:3L ~duration:1000.0 params in
      let r = H.Runtime.run cfg in
      check Alcotest.bool
        (H.Runtime.kind_name kind ^ " no detection")
        true
        (r.H.Runtime.p0_detected_at = None);
      check Alcotest.bool
        (H.Runtime.kind_name kind ^ " nobody inactivated")
        true
        (r.H.Runtime.pi_inactivated_at = []);
      check Alcotest.int
        (H.Runtime.kind_name kind ^ " no loss")
        0 r.H.Runtime.messages_lost)
    [ H.Runtime.Halving; H.Runtime.Two_phase; H.Runtime.Fixed_rate 2 ]

let test_steady_rate () =
  (* One beat each way per round of tmax: rate about 2 / tmax. *)
  let r = H.Experiments.steady_rate ~duration:50_000.0 H.Runtime.Halving params in
  let expected = 2.0 /. 10.0 in
  check Alcotest.bool "rate ~ 2/tmax" true
    (abs_float (r.H.Experiments.msgs_per_time -. expected) < 0.01);
  (* Fixed-rate with k = 2 sends twice as often. *)
  let f =
    H.Experiments.steady_rate ~duration:50_000.0 (H.Runtime.Fixed_rate 2) params
  in
  check Alcotest.bool "fixed-rate doubles" true
    (f.H.Experiments.msgs_per_time > 1.8 *. r.H.Experiments.msgs_per_time)

let test_crash_detected_within_bound () =
  List.iter
    (fun kind ->
      let d = H.Experiments.detection ~runs:60 ~seed:17L kind params in
      check Alcotest.int
        (H.Runtime.kind_name kind ^ " all detected")
        d.H.Experiments.runs d.H.Experiments.detected;
      (* The analytic bound counts from the last received beat; measuring
         from the crash instant can add up to one in-flight round trip. *)
      let slack = float_of_int params.H.Params.tmin in
      check Alcotest.bool
        (Printf.sprintf "%s max %.2f within bound %.2f + slack"
           (H.Runtime.kind_name kind) d.H.Experiments.max_delay
           d.H.Experiments.analytic_bound)
        true
        (d.H.Experiments.max_delay
        <= d.H.Experiments.analytic_bound +. slack))
    [ H.Runtime.Halving; H.Runtime.Two_phase; H.Runtime.Fixed_rate 2 ]

let test_p0_crash_inactivates_participants () =
  let cfg =
    H.Runtime.config ~kind:H.Runtime.Halving
      ~crash:{ H.Runtime.who = 0; at = 55.0 }
      ~seed:9L ~duration:300.0
      (H.Params.make ~n:3 ~tmin:2 ~tmax:10 ())
  in
  let r = H.Runtime.run cfg in
  check Alcotest.int "all three inactivated" 3
    (List.length r.H.Runtime.pi_inactivated_at);
  List.iter
    (fun (_, at) ->
      (* within 3*tmax - tmin = 28 of the crash (plus in-flight slack) *)
      check Alcotest.bool "within the participant bound" true
        (at -. 55.0 <= 28.0 +. 2.0))
    r.H.Runtime.pi_inactivated_at

let test_fixed_bounds_shrink_reaction () =
  let crash = { H.Runtime.who = 0; at = 55.0 } in
  let run fixed_bounds =
    let cfg =
      H.Runtime.config ~kind:H.Runtime.Halving ~crash ~fixed_bounds ~seed:9L
        ~duration:300.0 params
    in
    match (H.Runtime.run cfg).H.Runtime.pi_inactivated_at with
    | [ (_, at) ] -> at
    | _ -> Alcotest.fail "expected exactly one inactivation"
  in
  check Alcotest.bool "2*tmax reacts faster than 3*tmax - tmin" true
    (run true < run false)

let test_loss_robustness_ordering () =
  (* At a moderate loss rate: halving is the most robust, fixed-rate the
     least. *)
  let at kind =
    (H.Experiments.reliability ~runs:150 ~duration:1500.0 ~seed:23L kind params
       ~loss:0.05)
      .H.Experiments.false_detections
  in
  let h = at H.Runtime.Halving
  and t = at H.Runtime.Two_phase
  and f = at (H.Runtime.Fixed_rate 2) in
  check Alcotest.bool
    (Printf.sprintf "halving (%d) <= two-phase (%d)" h t)
    true (h <= t);
  check Alcotest.bool
    (Printf.sprintf "two-phase (%d) <= fixed-rate (%d)" t f)
    true (t <= f);
  check Alcotest.bool "ordering is strict somewhere" true (h < f)

let test_zero_loss_no_false_detection () =
  List.iter
    (fun kind ->
      let row =
        H.Experiments.reliability ~runs:20 ~duration:1000.0 kind params
          ~loss:0.0
      in
      check Alcotest.int
        (H.Runtime.kind_name kind ^ " clean")
        0 row.H.Experiments.false_detections)
    [ H.Runtime.Halving; H.Runtime.Two_phase; H.Runtime.Fixed_rate 3 ]

let test_detection_delay_accessor () =
  let crash = { H.Runtime.who = 1; at = 50.0 } in
  let cfg =
    H.Runtime.config ~kind:H.Runtime.Halving ~crash ~seed:2L ~duration:300.0
      params
  in
  let r = H.Runtime.run cfg in
  (match H.Runtime.detection_delay cfg r with
  | Some d -> check Alcotest.bool "positive delay" true (d > 0.0)
  | None -> Alcotest.fail "crash not detected");
  (* No crash configured: no delay to report. *)
  let quiet = H.Runtime.config ~kind:H.Runtime.Halving ~seed:2L ~duration:100.0 params in
  check Alcotest.bool "no crash, no delay" true
    (H.Runtime.detection_delay quiet (H.Runtime.run quiet) = None)

let test_bursty_loss_hurts_halving () =
  (* At equal average loss, bursty (Gilbert) loss produces far more false
     detections for the halving discipline than independent loss — the
     acceleration's robustness argument needs independence. *)
  let bursty = Sim.Loss.gilbert ~p_gb:0.01 ~p_bg:0.19 () in
  let avg = Sim.Loss.expected_loss bursty in
  let b =
    H.Experiments.reliability_model ~runs:120 ~duration:1500.0 ~seed:31L
      H.Runtime.Halving params ~model:bursty
  in
  let u =
    H.Experiments.reliability ~runs:120 ~duration:1500.0 ~seed:31L
      H.Runtime.Halving params ~loss:avg
  in
  check Alcotest.bool
    (Printf.sprintf "bursty (%d) > 2x uniform (%d)"
       b.H.Experiments.false_detections u.H.Experiments.false_detections)
    true
    (b.H.Experiments.false_detections
    > 2 * u.H.Experiments.false_detections)

let test_join_latency_bound () =
  let p = H.Params.make ~tmin:5 ~tmax:10 () in
  let row = H.Experiments.join_latency ~runs:300 p in
  check Alcotest.int "all joined" row.H.Experiments.j_runs
    row.H.Experiments.joined;
  check Alcotest.bool
    (Printf.sprintf "max %.2f within the corrected bound %.2f"
       row.H.Experiments.max_latency row.H.Experiments.join_bound)
    true
    (row.H.Experiments.max_latency <= row.H.Experiments.join_bound);
  (* and the bound is not wildly loose: the worst case gets close *)
  check Alcotest.bool "bound is approached" true
    (row.H.Experiments.max_latency > 0.7 *. row.H.Experiments.join_bound)

let test_config_validation () =
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Heartbeat.Runtime: Fixed_rate needs k >= 1") (fun () ->
      ignore
        (H.Runtime.config ~kind:(H.Runtime.Fixed_rate 0) ~duration:1.0 params))

let tests =
  ( "runtime",
    [
      Alcotest.test_case "deterministic per seed" `Quick test_deterministic_per_seed;
      Alcotest.test_case "quiet run stays up" `Quick test_quiet_run_stays_up;
      Alcotest.test_case "steady-state rate" `Quick test_steady_rate;
      Alcotest.test_case "crash detected within analytic bound" `Slow
        test_crash_detected_within_bound;
      Alcotest.test_case "p0 crash takes the group down" `Quick
        test_p0_crash_inactivates_participants;
      Alcotest.test_case "corrected bounds react faster" `Quick
        test_fixed_bounds_shrink_reaction;
      Alcotest.test_case "loss robustness ordering" `Slow
        test_loss_robustness_ordering;
      Alcotest.test_case "no loss, no false detection" `Quick
        test_zero_loss_no_false_detection;
      Alcotest.test_case "detection delay accessor" `Quick
        test_detection_delay_accessor;
      Alcotest.test_case "bursty loss hurts halving" `Slow
        test_bursty_loss_hurts_halving;
      Alcotest.test_case "join latency within corrected bound" `Quick
        test_join_latency_bound;
      Alcotest.test_case "config validation" `Quick test_config_validation;
    ] )
