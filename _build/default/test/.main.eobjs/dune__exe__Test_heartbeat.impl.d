test/test_heartbeat.ml: Alcotest Format Heartbeat List Lts Mc Printf QCheck QCheck_alcotest String Ta
