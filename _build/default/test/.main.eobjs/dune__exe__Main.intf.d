test/main.mli:
