test/test_runtime.ml: Alcotest Heartbeat List Printf Sim
