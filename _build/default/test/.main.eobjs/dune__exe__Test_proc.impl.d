test/test_proc.ml: Alcotest Format List Lts Mc Proc QCheck QCheck_alcotest String
