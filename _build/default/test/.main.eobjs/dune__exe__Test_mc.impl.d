test/test_mc.ml: Alcotest Array Char Format Hashtbl Int List Lts Mc Printf QCheck QCheck_alcotest String
