test/test_fd.ml: Alcotest Fd List Printf
