test/test_ta.ml: Alcotest List Mc Printf QCheck QCheck_alcotest Ta
