test/main.ml: Alcotest Test_export Test_fd Test_heartbeat Test_lts Test_mc Test_proc Test_runtime Test_sim Test_ta
