test/test_export.ml: Alcotest Heartbeat List Proc String Ta
