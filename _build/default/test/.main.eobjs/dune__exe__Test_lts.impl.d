test/test_lts.ml: Alcotest Array Char Format List Lts Printf QCheck QCheck_alcotest String
