(* Tests for the timed-automata substrate: expressions, compilation
   errors, and the discrete-time successor semantics (delay, urgency,
   committedness, handshake, broadcast, invariants, clock caps). *)

let check = Alcotest.check
module M = Ta.Model
module E = Ta.Expr

let label = Alcotest.testable Ta.Semantics.pp_label ( = )

(* Minimal network builder. *)
let net ?(vars = []) ?(clocks = []) ?(chans = []) automata =
  { M.vars; clocks; chans; automata }

let auto ?(init = "A") name locations edges =
  { M.auto_name = name; locations; edges; init_loc = init }

let labels_of t c = List.map fst (Ta.Semantics.successors t c)

(* --- expression evaluation through a one-step automaton --- *)

let eval_expr expr =
  (* x := expr on the single edge; read the result in the successor. *)
  let m =
    net
      ~vars:[ M.scalar "x" 0; M.scalar "y" 5; M.array "a" [ 10; 20; 30 ] ]
      [
        auto "A"
          [ M.loc "A"; M.loc "B" ]
          [ M.edge ~src:"A" ~dst:"B" ~updates:[ M.Assign (M.Scalar "x", expr) ] () ];
      ]
  in
  let t = Ta.Semantics.compile m in
  let actions =
    List.filter
      (fun (l, _) -> l <> Ta.Semantics.Delay)
      (Ta.Semantics.successors t (Ta.Semantics.initial t))
  in
  match actions with
  | [ (_, c) ] -> Ta.Semantics.var t "x" c
  | _ -> Alcotest.fail "expected exactly one action successor"

let test_expr_arith () =
  check Alcotest.int "add" 7 (eval_expr E.(i 3 + i 4));
  check Alcotest.int "sub" (-2) (eval_expr E.(i 3 - i 5));
  check Alcotest.int "mul" 12 (eval_expr E.(i 3 * i 4));
  check Alcotest.int "div" 2 (eval_expr E.(i 5 / i 2));
  check Alcotest.int "min" 3 (eval_expr (E.Min (E.i 3, E.i 9)));
  check Alcotest.int "max" 9 (eval_expr (E.Max (E.i 3, E.i 9)));
  check Alcotest.int "var" 5 (eval_expr (E.v "y"));
  check Alcotest.int "array" 20 (eval_expr (E.Elem ("a", E.i 1)))

let test_compile_errors () =
  let bad_var =
    net [ auto "A" [ M.loc "A" ] [ M.edge ~src:"A" ~dst:"A" ~guard:E.(v "nope" = i 0) () ] ]
  in
  Alcotest.check_raises "unknown variable"
    (Invalid_argument "unknown variable nope") (fun () ->
      ignore (Ta.Semantics.compile bad_var));
  let dup =
    net ~vars:[ M.scalar "x" 0; M.scalar "x" 1 ] [ auto "A" [ M.loc "A" ] [] ]
  in
  Alcotest.check_raises "duplicate variable"
    (Invalid_argument "duplicate variable x") (fun () ->
      ignore (Ta.Semantics.compile dup));
  let bad_loc = net [ auto ~init:"Z" "A" [ M.loc "A" ] [] ] in
  Alcotest.check_raises "unknown initial location"
    (Invalid_argument "unknown initial location Z in A") (fun () ->
      ignore (Ta.Semantics.compile bad_loc))

(* --- delay and invariants --- *)

let test_delay_and_invariant () =
  (* One clock, invariant x <= 2: exactly two delays then the edge. *)
  let m =
    net
      ~clocks:[ { M.clock_name = "x"; cap = 5 } ]
      [
        auto "A"
          [ M.loc ~invariant:E.(clk "x" <= i 2) "A"; M.loc "B" ]
          [ M.edge ~src:"A" ~dst:"B" ~guard:E.(clk "x" = i 2) ~act:"go" () ];
      ]
  in
  let t = Ta.Semantics.compile m in
  let c0 = Ta.Semantics.initial t in
  check (Alcotest.list label) "only delay at 0" [ Ta.Semantics.Delay ]
    (labels_of t c0);
  let step c =
    match Ta.Semantics.successors t c with
    | (_, c') :: _ -> c'
    | [] -> Alcotest.fail "stuck"
  in
  let c1 = step c0 in
  let c2 = step c1 in
  (* at x = 2: the invariant blocks further delay, only the edge fires *)
  check (Alcotest.list label) "forced edge" [ Ta.Semantics.Act "go" ]
    (labels_of t c2)

let test_urgent_blocks_delay () =
  let m =
    net
      ~clocks:[ { M.clock_name = "x"; cap = 3 } ]
      [
        auto "A"
          [ M.loc ~kind:M.Urgent "A"; M.loc "B" ]
          [ M.edge ~src:"A" ~dst:"B" ~act:"leave" () ];
      ]
  in
  let t = Ta.Semantics.compile m in
  check (Alcotest.list label) "no delay" [ Ta.Semantics.Act "leave" ]
    (labels_of t (Ta.Semantics.initial t))

let test_committed_priority () =
  (* Two automata; one committed: only the committed one may move. *)
  let m =
    net
      [
        auto "A"
          [ M.loc ~kind:M.Committed "A"; M.loc "B" ]
          [ M.edge ~src:"A" ~dst:"B" ~act:"a_moves" () ];
        auto "C"
          [ M.loc "A"; M.loc "B" ]
          [ M.edge ~src:"A" ~dst:"B" ~act:"c_moves" () ];
      ]
  in
  let t = Ta.Semantics.compile m in
  check (Alcotest.list label) "committed first" [ Ta.Semantics.Act "a_moves" ]
    (labels_of t (Ta.Semantics.initial t))

let test_clock_cap_saturates () =
  (* cap 2: delays keep working past the cap (value pegged). *)
  let m =
    net
      ~clocks:[ { M.clock_name = "x"; cap = 2 } ]
      [ auto "A" [ M.loc "A" ] [] ]
  in
  let t = Ta.Semantics.compile m in
  let rec advance c k = if k = 0 then c else
    match Ta.Semantics.successors t c with
    | [ (Ta.Semantics.Delay, c') ] -> advance c' (k - 1)
    | _ -> Alcotest.fail "expected a delay"
  in
  let c = advance (Ta.Semantics.initial t) 10 in
  check Alcotest.int "saturated" 2 (Ta.Semantics.clock t "x" c)

(* --- synchronisation --- *)

let test_handshake () =
  let m =
    net
      ~vars:[ M.scalar "x" 0 ]
      ~chans:[ M.chan "c" ]
      [
        auto "S"
          [ M.loc "A"; M.loc "B" ]
          [
            M.edge ~src:"A" ~dst:"B" ~sync:(M.Send "c") ~act:"sync"
              ~updates:[ M.Assign (M.Scalar "x", E.i 1) ]
              ();
          ];
        auto "R"
          [ M.loc "A"; M.loc "B" ]
          [
            (* The receiver's update reads the sender's write: sender
               updates are applied first (UPPAAL order). *)
            M.edge ~src:"A" ~dst:"B" ~sync:(M.Recv "c")
              ~updates:[ M.Assign (M.Scalar "x", E.(v "x" + i 10)) ]
              ();
          ];
      ]
  in
  let t = Ta.Semantics.compile m in
  match
    List.filter
      (fun (l, _) -> l <> Ta.Semantics.Delay)
      (Ta.Semantics.successors t (Ta.Semantics.initial t))
  with
  | [ (Ta.Semantics.Act "sync", c) ] ->
      check Alcotest.int "sender then receiver" 11 (Ta.Semantics.var t "x" c);
      check Alcotest.bool "both moved" true
        (Ta.Semantics.loc_is t ~auto:"S" ~loc:"B" c
        && Ta.Semantics.loc_is t ~auto:"R" ~loc:"B" c)
  | other ->
      Alcotest.failf "expected one sync, got %d successors" (List.length other)

let test_handshake_blocks_without_partner () =
  let m =
    net ~chans:[ M.chan "c" ]
      [
        auto "S"
          [ M.loc "A"; M.loc "B" ]
          [ M.edge ~src:"A" ~dst:"B" ~sync:(M.Send "c") () ];
      ]
  in
  let t = Ta.Semantics.compile m in
  (* only the delay remains *)
  check (Alcotest.list label) "blocked" [ Ta.Semantics.Delay ]
    (labels_of t (Ta.Semantics.initial t))

let test_broadcast () =
  let recv name =
    auto name
      [ M.loc "A"; M.loc "B" ]
      [ M.edge ~src:"A" ~dst:"B" ~sync:(M.Recv "b") () ]
  in
  let m =
    net
      ~chans:[ M.chan ~broadcast:true "b" ]
      [
        auto "S"
          [ M.loc "A"; M.loc "B" ]
          [ M.edge ~src:"A" ~dst:"B" ~sync:(M.Send "b") ~act:"bcast" () ];
        recv "R1";
        recv "R2";
      ]
  in
  let t = Ta.Semantics.compile m in
  match
    List.filter
      (fun (l, _) -> l = Ta.Semantics.Act "bcast")
      (Ta.Semantics.successors t (Ta.Semantics.initial t))
  with
  | [ (_, c) ] ->
      check Alcotest.bool "all receivers moved" true
        (Ta.Semantics.loc_is t ~auto:"R1" ~loc:"B" c
        && Ta.Semantics.loc_is t ~auto:"R2" ~loc:"B" c)
  | l -> Alcotest.failf "expected one broadcast, got %d" (List.length l)

let test_broadcast_never_blocks () =
  (* No enabled receiver: the send still fires, alone. *)
  let m =
    net
      ~chans:[ M.chan ~broadcast:true "b" ]
      [
        auto "S"
          [ M.loc "A"; M.loc "B" ]
          [ M.edge ~src:"A" ~dst:"B" ~sync:(M.Send "b") ~act:"bcast" () ];
        auto "R"
          [ M.loc "A"; M.loc "B" ]
          [ M.edge ~src:"A" ~dst:"B" ~sync:(M.Recv "b") ~guard:E.False () ];
      ]
  in
  let t = Ta.Semantics.compile m in
  match
    List.filter
      (fun (l, _) -> l <> Ta.Semantics.Delay)
      (Ta.Semantics.successors t (Ta.Semantics.initial t))
  with
  | [ (Ta.Semantics.Act "bcast", c) ] ->
      check Alcotest.bool "receiver stayed" true
        (Ta.Semantics.loc_is t ~auto:"R" ~loc:"A" c)
  | _ -> Alcotest.fail "expected the lone broadcast"

let test_guard_blocks_edge () =
  let m =
    net
      ~vars:[ M.scalar "x" 0 ]
      [
        auto "A"
          [ M.loc "A"; M.loc "B" ]
          [ M.edge ~src:"A" ~dst:"B" ~guard:E.(v "x" = i 1) ~act:"go" () ];
      ]
  in
  let t = Ta.Semantics.compile m in
  check Alcotest.bool "only delay" true
    (List.for_all (fun (l, _) -> l = Ta.Semantics.Delay)
       (Ta.Semantics.successors t (Ta.Semantics.initial t)))

let test_invariant_rejects_target () =
  (* An edge into a location whose invariant is already false is not
     taken. *)
  let m =
    net
      ~clocks:[ { M.clock_name = "x"; cap = 5 } ]
      [
        auto "A"
          [ M.loc "A"; M.loc ~invariant:E.(clk "x" <= i 0) "B" ]
          [ M.edge ~src:"A" ~dst:"B" ~guard:E.(clk "x" >= i 1) ~act:"go" () ];
      ]
  in
  let t = Ta.Semantics.compile m in
  let c1 =
    match Ta.Semantics.successors t (Ta.Semantics.initial t) with
    | [ (Ta.Semantics.Delay, c) ] -> c
    | _ -> Alcotest.fail "expected delay"
  in
  check Alcotest.bool "edge suppressed" true
    (List.for_all (fun (l, _) -> l = Ta.Semantics.Delay)
       (Ta.Semantics.successors t c1))

let test_initial_invariant_checked () =
  let m =
    net
      ~vars:[ M.scalar "x" 1 ]
      [ auto "A" [ M.loc ~invariant:E.(v "x" = i 0) "A" ] [] ]
  in
  Alcotest.check_raises "initial invariant"
    (Invalid_argument "initial invariant of A violated") (fun () ->
      ignore (Ta.Semantics.compile m))

let test_observers () =
  let m =
    net
      ~vars:[ M.scalar "x" 3; M.array "a" [ 1; 2 ] ]
      ~clocks:[ { M.clock_name = "k"; cap = 9 } ]
      [ auto "A" [ M.loc "A" ] [] ]
  in
  let t = Ta.Semantics.compile m in
  let c = Ta.Semantics.initial t in
  check Alcotest.int "var" 3 (Ta.Semantics.var t "x" c);
  check Alcotest.int "elem" 2 (Ta.Semantics.elem t "a" 1 c);
  check Alcotest.int "clock" 0 (Ta.Semantics.clock t "k" c);
  check Alcotest.bool "loc" true (Ta.Semantics.loc_is t ~auto:"A" ~loc:"A" c)

(* Determinism / purity: successors does not mutate its argument. *)
let test_successors_pure () =
  let m =
    net
      ~vars:[ M.scalar "x" 0 ]
      [
        auto "A" [ M.loc "A" ]
          [ M.edge ~src:"A" ~dst:"A" ~updates:[ M.Assign (M.Scalar "x", E.(v "x" + i 1)) ] () ];
      ]
  in
  let t = Ta.Semantics.compile m in
  let c = Ta.Semantics.initial t in
  ignore (Ta.Semantics.successors t c);
  ignore (Ta.Semantics.successors t c);
  check Alcotest.int "unchanged" 0 (Ta.Semantics.var t "x" c)

let tests =
  ( "ta",
    [
      Alcotest.test_case "expression evaluation" `Quick test_expr_arith;
      Alcotest.test_case "compile errors" `Quick test_compile_errors;
      Alcotest.test_case "delay bounded by invariant" `Quick
        test_delay_and_invariant;
      Alcotest.test_case "urgent location blocks delay" `Quick
        test_urgent_blocks_delay;
      Alcotest.test_case "committed location has priority" `Quick
        test_committed_priority;
      Alcotest.test_case "clock saturation at cap" `Quick test_clock_cap_saturates;
      Alcotest.test_case "handshake with update order" `Quick test_handshake;
      Alcotest.test_case "handshake blocks without partner" `Quick
        test_handshake_blocks_without_partner;
      Alcotest.test_case "broadcast reaches all enabled receivers" `Quick
        test_broadcast;
      Alcotest.test_case "broadcast never blocks" `Quick test_broadcast_never_blocks;
      Alcotest.test_case "guards block edges" `Quick test_guard_blocks_edge;
      Alcotest.test_case "target invariant filters transitions" `Quick
        test_invariant_rejects_target;
      Alcotest.test_case "initial invariant is checked" `Quick
        test_initial_invariant_checked;
      Alcotest.test_case "configuration observers" `Quick test_observers;
      Alcotest.test_case "successors is pure" `Quick test_successors_pure;
    ] )

(* --- property-based: random small networks --- *)

let random_network : Ta.Model.t QCheck.arbitrary =
  let open QCheck.Gen in
  let guard_gen =
    oneof
      [
        return E.True;
        return E.(v "x" = i 0);
        return E.(v "x" = i 1);
        return E.(clk "k" <= i 2);
        return E.(clk "k" >= i 1);
      ]
  in
  let updates_gen =
    oneof
      [
        return [];
        return [ M.Assign (M.Scalar "x", E.i 1) ];
        return [ M.Assign (M.Scalar "x", E.i 0) ];
        return [ M.Reset "k" ];
      ]
  in
  let edge_gen locs =
    let loc_name i = Printf.sprintf "L%d" i in
    map3
      (fun src dst (g, us) ->
        M.edge ~src:(loc_name src) ~dst:(loc_name dst) ~guard:g ~updates:us
          ~act:(Printf.sprintf "e%d%d" src dst) ())
      (int_bound (locs - 1))
      (int_bound (locs - 1))
      (pair guard_gen updates_gen)
  in
  let automaton_gen name =
    int_range 1 3 >>= fun locs ->
    list_size (int_bound 5) (edge_gen locs) >>= fun edges ->
    return
      {
        M.auto_name = name;
        locations = List.init locs (fun i -> M.loc (Printf.sprintf "L%d" i));
        edges;
        init_loc = "L0";
      }
  in
  let network_gen =
    automaton_gen "A" >>= fun a ->
    automaton_gen "B" >>= fun b ->
    return
      {
        M.vars = [ M.scalar "x" 0 ];
        clocks = [ { M.clock_name = "k"; cap = 3 } ];
        chans = [];
        automata = [ a; b ];
      }
  in
  QCheck.make
    ~print:(fun net ->
      Printf.sprintf "network with %d+%d edges"
        (List.length (List.nth net.M.automata 0).M.edges)
        (List.length (List.nth net.M.automata 1).M.edges))
    network_gen

let prop_exploration_terminates =
  QCheck.Test.make ~name:"random network exploration terminates" ~count:100
    random_network (fun net ->
      let t = Ta.Semantics.compile net in
      let count, _complete =
        Mc.Explore.count ~max_states:10_000 (Ta.Semantics.system t)
      in
      count >= 1)

let prop_successors_deterministic =
  QCheck.Test.make ~name:"successors is deterministic and pure" ~count:100
    random_network (fun net ->
      let t = Ta.Semantics.compile net in
      let c = Ta.Semantics.initial t in
      let s1 = Ta.Semantics.successors t c in
      let s2 = Ta.Semantics.successors t c in
      s1 = s2)

let prop_delay_advances_clock =
  QCheck.Test.make ~name:"a delay advances every clock by one up to its cap"
    ~count:100 random_network (fun net ->
      let t = Ta.Semantics.compile net in
      (* follow up to 20 arbitrary steps, checking every delay *)
      let rec walk c steps =
        steps = 0
        ||
        match Ta.Semantics.successors t c with
        | [] -> true
        | succs ->
            List.for_all
              (fun (l, c') ->
                (match l with
                | Ta.Semantics.Delay ->
                    let before = Ta.Semantics.clock t "k" c in
                    let after = Ta.Semantics.clock t "k" c' in
                    after = min (before + 1) 3
                | Ta.Semantics.Act _ -> true)
                &&
                (* continue along the first successor only *)
                true)
              succs
            && walk (snd (List.hd succs)) (steps - 1)
      in
      walk (Ta.Semantics.initial t) 20)

let prop_tests =
  [
    QCheck_alcotest.to_alcotest prop_exploration_terminates;
    QCheck_alcotest.to_alcotest prop_successors_deterministic;
    QCheck_alcotest.to_alcotest prop_delay_advances_clock;
  ]

let tests = (fst tests, snd tests @ prop_tests)
