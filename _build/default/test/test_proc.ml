(* Tests for the process-algebra substrate: values, expressions, terms,
   specification validation and the operational semantics. *)

let check = Alcotest.check
module V = Proc.Value
module P = Proc.Pexpr
module T = Proc.Term

(* --- values --- *)

let test_value_accessors () =
  check Alcotest.bool "bool" true (V.to_bool (V.bool true));
  check Alcotest.int "int" 7 (V.to_int (V.int 7));
  check Alcotest.int "list" 2 (List.length (V.to_list (V.list [ V.int 1; V.int 2 ])));
  Alcotest.check_raises "wrong type" (Invalid_argument "Proc.Value.to_int: got a bool")
    (fun () -> ignore (V.to_int (V.bool true)))

let test_value_pp () =
  check Alcotest.string "pp list" "[1; true]"
    (V.to_string (V.list [ V.int 1; V.bool true ]))

(* --- expressions --- *)

let ev e = P.eval [] e
let evi e = V.to_int (ev e)
let evb e = V.to_bool (ev e)

let test_pexpr_arith () =
  check Alcotest.int "add" 5 (evi (P.Add (P.int 2, P.int 3)));
  check Alcotest.int "sub" (-1) (evi (P.Sub (P.int 2, P.int 3)));
  check Alcotest.int "mul" 6 (evi (P.Mul (P.int 2, P.int 3)));
  check Alcotest.int "div" 3 (evi (P.Div (P.int 7, P.int 2)))

let test_pexpr_bool () =
  check Alcotest.bool "lt" true (evb (P.Lt (P.int 1, P.int 2)));
  check Alcotest.bool "le" true (evb (P.Le (P.int 2, P.int 2)));
  check Alcotest.bool "eq values" true (evb (P.Eq (P.tt, P.tt)));
  check Alcotest.bool "and" false (evb (P.And (P.tt, P.ff)));
  check Alcotest.bool "or" true (evb (P.Or (P.ff, P.tt)));
  check Alcotest.bool "not" true (evb (P.Not P.ff))

let test_pexpr_if_env () =
  let env = [ ("x", V.int 10); ("b", V.bool false) ] in
  check Alcotest.int "if false" 0
    (V.to_int (P.eval env (P.If (P.Var "b", P.Var "x", P.int 0))));
  Alcotest.check_raises "unbound"
    (Invalid_argument "Proc.Pexpr.eval: unbound variable y") (fun () ->
      ignore (P.eval env (P.Var "y")))

let test_pexpr_lists () =
  let l = P.Const (V.list [ V.int 4; V.int 5; V.int 6 ]) in
  check Alcotest.int "nth" 5 (evi (P.Nth (l, P.int 1)));
  check Alcotest.int "set_nth" 9
    (evi (P.Nth (P.Set_nth (l, P.int 2, P.int 9), P.int 2)));
  check Alcotest.int "min" 4 (evi (P.Min_list l));
  check Alcotest.int "len" 3 (evi (P.Len l));
  check Alcotest.int "repl len" 4 (evi (P.Len (P.Repl (P.int 4, P.tt))));
  Alcotest.check_raises "nth out of bounds"
    (Invalid_argument "Proc.Pexpr.eval: list index out of bounds") (fun () ->
      ignore (ev (P.Nth (l, P.int 3))))

(* --- specification validation --- *)

let tiny_def = T.def "X" [] (T.Prefix (T.act "a" [], T.call "X" []))

let test_validate_ok () =
  Proc.Spec.validate
    {
      Proc.Spec.defs = [ tiny_def ];
      init = [ ("X", []) ];
      comms = [];
      allow = [ "a" ];
      hide = [];
    }

let test_validate_unknown_def () =
  Alcotest.check_raises "unknown"
    (Invalid_argument "Proc.Spec: unknown definition Y (initial component)")
    (fun () ->
      Proc.Spec.validate
        {
          Proc.Spec.defs = [ tiny_def ];
          init = [ ("Y", []) ];
          comms = [];
          allow = [];
          hide = [];
        })

let test_validate_arity () =
  Alcotest.check_raises "arity"
    (Invalid_argument "Proc.Spec: X expects 0 arguments, got 1 (initial component)")
    (fun () ->
      Proc.Spec.validate
        {
          Proc.Spec.defs = [ tiny_def ];
          init = [ ("X", [ V.int 1 ]) ];
          comms = [];
          allow = [];
          hide = [];
        })

let test_validate_tick_hidden () =
  Alcotest.check_raises "tick hidden"
    (Invalid_argument "Proc.Spec: tick cannot be hidden") (fun () ->
      Proc.Spec.validate
        {
          Proc.Spec.defs = [ tiny_def ];
          init = [ ("X", []) ];
          comms = [];
          allow = [];
          hide = [ "tick" ];
        })

(* --- semantics --- *)

let lts_of spec = Proc.Semantics.lts spec

let spec_of ?(comms = []) ?(allow = []) ?(hide = []) defs init =
  { Proc.Spec.defs; init; comms; allow; hide }

let label = Alcotest.testable Proc.Semantics.pp_label ( = )

let test_prefix_choice () =
  (* a.X + b.X over a one-state recursion: two self-loop labels. *)
  let d =
    T.def "X" []
      (T.choice
         [ T.Prefix (T.act "a" [], T.call "X" []); T.Prefix (T.act "b" [], T.call "X" []) ])
  in
  let g = lts_of (spec_of [ d ] [ ("X", []) ] ~allow:[ "a"; "b" ]) in
  check Alcotest.int "one state" 1 (Lts.Graph.num_states g);
  check Alcotest.int "two loops" 2 (Lts.Graph.num_transitions g)

let test_data_in_actions () =
  (* emit the values of a sum domain *)
  let d =
    T.def "X" [] (T.Sum ("v", 1, 3, T.Prefix (T.act "out" [ P.Var "v" ], T.Nil)))
  in
  let g = lts_of (spec_of [ d ] [ ("X", []) ] ~allow:[ "out" ]) in
  check Alcotest.int "three transitions" 3 (Lts.Graph.num_transitions g);
  let labels = Lts.Graph.labels g in
  check Alcotest.bool "out(2) present" true
    (List.mem (Proc.Semantics.Act ("out", [ V.Int 2 ])) labels)

let test_cond () =
  let d =
    T.def "X" [ "n" ]
      (T.cond
         (P.Lt (P.Var "n", P.int 2))
         (T.Prefix (T.act "low" [], T.Nil))
         (T.Prefix (T.act "high" [], T.Nil)))
  in
  let g = lts_of (spec_of [ d ] [ ("X", [ V.int 5 ]) ] ~allow:[ "low"; "high" ]) in
  check (Alcotest.list label) "high branch"
    [ Proc.Semantics.Act ("high", []) ]
    (Lts.Graph.labels g)

let test_communication () =
  (* sender s(1).Nil, receiver sum x. r(x).Nil; allow only the result. *)
  let s = T.def "S" [] (T.Prefix (T.act "snd" [ P.int 1 ], T.Nil)) in
  let r =
    T.def "R" [] (T.Sum ("x", 0, 2, T.Prefix (T.act "rcv" [ P.Var "x" ], T.Nil)))
  in
  let g =
    lts_of
      (spec_of [ s; r ]
         [ ("S", []); ("R", []) ]
         ~comms:[ ("snd", "rcv", "comm") ]
         ~allow:[ "comm" ])
  in
  (* Only the matching data value synchronises; unmatched halves block. *)
  check Alcotest.int "one transition" 1 (Lts.Graph.num_transitions g);
  check (Alcotest.list label) "comm(1)"
    [ Proc.Semantics.Act ("comm", [ V.Int 1 ]) ]
    (Lts.Graph.labels g)

let test_hide () =
  let s = T.def "S" [] (T.Prefix (T.act "snd" [], T.Nil)) in
  let r = T.def "R" [] (T.Prefix (T.act "rcv" [], T.Nil)) in
  let g =
    lts_of
      (spec_of [ s; r ]
         [ ("S", []); ("R", []) ]
         ~comms:[ ("snd", "rcv", "comm") ]
         ~hide:[ "comm" ])
  in
  check (Alcotest.list label) "tau" [ Proc.Semantics.tau ] (Lts.Graph.labels g)

let test_tick_requires_all () =
  (* One component ticks, the other only after an action: no global tick
     until the action fires. *)
  let a = T.def "A" [] (T.Prefix (T.act "tick" [], T.call "A" [])) in
  let b =
    T.def "B" []
      (T.Prefix (T.act "go" [], T.call "B2" []))
  in
  let b2 = T.def "B2" [] (T.Prefix (T.act "tick" [], T.call "B2" [])) in
  let g =
    lts_of (spec_of [ a; b; b2 ] [ ("A", []); ("B", []) ] ~allow:[ "go" ])
  in
  (* initial state: only "go"; afterwards only tick self-loop *)
  check Alcotest.int "two states" 2 (Lts.Graph.num_states g);
  check (Alcotest.list label) "go first"
    [ Proc.Semantics.Act ("go", []) ]
    (List.map fst (Lts.Graph.successors g (Lts.Graph.initial g)))

let test_blocked_unmatched_half () =
  (* A send with no matching receiver and not in the allow set is
     blocked. *)
  let s = T.def "S" [] (T.Prefix (T.act "snd" [], T.Nil)) in
  let g =
    lts_of
      (spec_of [ s ] [ ("S", []) ] ~comms:[ ("snd", "rcv", "comm") ] ~allow:[ "comm" ])
  in
  check Alcotest.int "deadlocked" 0 (Lts.Graph.num_transitions g)

let test_unguarded_recursion () =
  let d = T.def "X" [] (T.call "X" []) in
  let sys = Proc.Semantics.system (spec_of [ d ] [ ("X", []) ]) in
  let module S = (val sys : Mc.System.S
                    with type state = Proc.Semantics.state
                     and type label = Proc.Semantics.label)
  in
  Alcotest.check_raises "unguarded"
    (Proc.Semantics.Unguarded_recursion "definition unfolding limit")
    (fun () -> ignore (S.successors S.initial))

let test_sum_binding_shadows () =
  (* The sum variable shadows an outer parameter of the same name. *)
  let d =
    T.def "X" [ "v" ]
      (T.Sum ("v", 7, 7, T.Prefix (T.act "out" [ P.Var "v" ], T.Nil)))
  in
  let g = lts_of (spec_of [ d ] [ ("X", [ V.int 1 ]) ] ~allow:[ "out" ]) in
  check (Alcotest.list label) "inner binding"
    [ Proc.Semantics.Act ("out", [ V.Int 7 ]) ]
    (Lts.Graph.labels g)

let test_label_name () =
  check Alcotest.string "tick" "tick" (Proc.Semantics.label_name Proc.Semantics.Tick);
  check Alcotest.string "act" "a"
    (Proc.Semantics.label_name (Proc.Semantics.Act ("a", [])))

let tests =
  ( "proc",
    [
      Alcotest.test_case "value accessors" `Quick test_value_accessors;
      Alcotest.test_case "value printing" `Quick test_value_pp;
      Alcotest.test_case "expr arithmetic" `Quick test_pexpr_arith;
      Alcotest.test_case "expr booleans" `Quick test_pexpr_bool;
      Alcotest.test_case "expr if/env" `Quick test_pexpr_if_env;
      Alcotest.test_case "expr lists" `Quick test_pexpr_lists;
      Alcotest.test_case "validate ok" `Quick test_validate_ok;
      Alcotest.test_case "validate unknown def" `Quick test_validate_unknown_def;
      Alcotest.test_case "validate arity" `Quick test_validate_arity;
      Alcotest.test_case "validate tick not hidden" `Quick test_validate_tick_hidden;
      Alcotest.test_case "prefix and choice" `Quick test_prefix_choice;
      Alcotest.test_case "data in actions" `Quick test_data_in_actions;
      Alcotest.test_case "condition" `Quick test_cond;
      Alcotest.test_case "communication with data match" `Quick test_communication;
      Alcotest.test_case "hiding to tau" `Quick test_hide;
      Alcotest.test_case "tick is a global sync" `Quick test_tick_requires_all;
      Alcotest.test_case "unmatched half blocks" `Quick test_blocked_unmatched_half;
      Alcotest.test_case "unguarded recursion detected" `Quick
        test_unguarded_recursion;
      Alcotest.test_case "sum shadows parameter" `Quick test_sum_binding_shadows;
      Alcotest.test_case "label names" `Quick test_label_name;
    ] )

(* --- property-based: random guarded specifications --- *)

let random_spec : Proc.Spec.t QCheck.arbitrary =
  let open QCheck.Gen in
  (* Each component is a guarded loop over a random subset of actions
     drawn from {tick, a, b, snd, rcv}; snd/rcv communicate into c. *)
  let summand_gen self =
    oneofl [ "tick"; "a"; "b"; "snd"; "rcv" ] >>= fun act ->
    return (T.Prefix (T.act act [], T.call self []))
  in
  let component_gen name =
    list_size (int_range 1 4) (summand_gen name) >>= fun summands ->
    return (T.def name [] (T.choice summands))
  in
  let spec_gen =
    component_gen "X" >>= fun x ->
    component_gen "Y" >>= fun y ->
    return
      {
        Proc.Spec.defs = [ x; y ];
        init = [ ("X", []); ("Y", []) ];
        comms = [ ("snd", "rcv", "c") ];
        allow = [ "a"; "b"; "c" ];
        hide = [];
      }
  in
  QCheck.make
    ~print:(fun spec ->
      String.concat " | "
        (List.map
           (fun (d : T.def) -> Format.asprintf "%a" Proc.Term.pp d.T.body)
           spec.Proc.Spec.defs))
    spec_gen

let prop_spec_exploration_terminates =
  QCheck.Test.make ~name:"random spec exploration terminates" ~count:200
    random_spec (fun spec ->
      let count, complete =
        Mc.Explore.count ~max_states:10_000 (Proc.Semantics.system spec)
      in
      complete && count >= 1 && count <= 16)

let prop_spec_labels_allowed =
  QCheck.Test.make ~name:"every emitted label is allowed" ~count:200
    random_spec (fun spec ->
      let space =
        Mc.Explore.space ~max_states:10_000 (Proc.Semantics.system spec)
      in
      List.for_all
        (fun (l : Proc.Semantics.label) ->
          match l with
          | Proc.Semantics.Tick -> true
          | Proc.Semantics.Act (name, _) ->
              List.mem name spec.Proc.Spec.allow)
        (Lts.Graph.labels space.Mc.Explore.lts))

let prop_spec_successors_pure =
  QCheck.Test.make ~name:"spec successors deterministic" ~count:100
    random_spec (fun spec ->
      let sys = Proc.Semantics.system spec in
      let module S =
        (val sys : Mc.System.S
               with type state = Proc.Semantics.state
                and type label = Proc.Semantics.label)
      in
      S.successors S.initial = S.successors S.initial)

let prop_tests =
  [
    QCheck_alcotest.to_alcotest prop_spec_exploration_terminates;
    QCheck_alcotest.to_alcotest prop_spec_labels_allowed;
    QCheck_alcotest.to_alcotest prop_spec_successors_pure;
  ]

let tests = (fst tests, snd tests @ prop_tests)
