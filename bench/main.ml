(* Benchmark and regeneration harness.

   Part 1 regenerates every table and figure of the evaluation (the
   analysis paper's Tables 1 and 2, the fixed-version table, the
   counterexample Figures 10-13, the component Figures 1-2, the §6.2
   bound table, and the ICDCS'98 quantitative series), printing the same
   rows the papers report.

   Part 2 times the kernels behind each experiment with Bechamel — one
   Test.make per table/figure plus the substrate microbenchmarks. *)

open Bechamel
module H = Heartbeat

(* ------------------------------------------------------------------ *)
(* Part 1: regeneration                                                 *)
(* ------------------------------------------------------------------ *)

let print_table ?(fixed = false) variant =
  let header =
    Printf.sprintf "%s%s (n=1)"
      (H.Ta_models.variant_name variant)
      (if fixed then " [fixed]" else "")
  in
  Format.printf "%a@."
    (fun ppf -> H.Verify.pp_table ppf ~header)
    (H.Verify.table ~fixed variant)

let regenerate () =
  Format.printf "=== Table 1: (revised) binary, two-phase, static ===@.@.";
  List.iter print_table
    [ H.Ta_models.Binary; H.Ta_models.Revised; H.Ta_models.Two_phase;
      H.Ta_models.Static ];
  Format.printf "@.=== Table 2: expanding, dynamic ===@.@.";
  List.iter print_table [ H.Ta_models.Expanding; H.Ta_models.Dynamic ];
  Format.printf "@.=== Section 6: fixed versions ===@.@.";
  List.iter (print_table ~fixed:true) H.Ta_models.all_variants;
  Format.printf "@.=== Figures 10-13: counterexamples ===@.@.";
  List.iter
    (fun s -> Format.printf "%a@." H.Scenarios.pp s)
    (H.Scenarios.all ());
  Format.printf "@.=== Figures 1-2: component state spaces ===@.@.";
  let p = H.Params.make ~tmin:1 ~tmax:2 () in
  Format.printf "p[0] with stopwatch (tmax=2, tmin=1): raw %a; reduced %a@."
    Lts.Graph.pp_stats (H.Figures.p0_component p) Lts.Graph.pp_stats
    (H.Figures.p0_reduced p);
  Format.printf "p[1] with watchdog  (tmax=2, tmin=1): raw %a; reduced %a@."
    Lts.Graph.pp_stats (H.Figures.p1_component p) Lts.Graph.pp_stats
    (H.Figures.p1_reduced p);
  Format.printf "@.=== Section 6.2: detection bounds (tmax=10) ===@.@.";
  Format.printf
    "tmin  claimed(2*tmax)  corrected  halving-worst  p[i]-tight  join@.";
  List.iter
    (fun tmin ->
      let p = H.Params.make ~tmin ~tmax:10 () in
      Format.printf "%4d  %15d  %9d  %13d  %10d  %4d@." tmin
        (H.Bounds.original_p0_claim p)
        (H.Bounds.p0_detection p)
        (H.Bounds.p0_detection_exhaustive p)
        (H.Bounds.pi_waiting p) (H.Bounds.pi_join_waiting p))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  Format.printf
    "@.=== worst-case detection measured on the model (binary) ===@.@.";
  Format.printf "tmin  analytic  model-measured@.";
  List.iter
    (fun (tmin, tmax) ->
      let p = H.Params.make ~tmin ~tmax () in
      Format.printf "%4d  %8d  %14d@." tmin
        (H.Bounds.p0_detection_exhaustive p)
        (H.Verify.worst_detection H.Ta_models.Binary p))
    H.Params.table_datasets;
  Format.printf "@.=== ICDCS'98 quantitative claims (simulation) ===@.@.";
  let params = H.Params.make ~tmin:2 ~tmax:10 () in
  Format.printf "steady-state rate (%a):@." H.Params.pp params;
  List.iter
    (fun k ->
      Format.printf "  %a@." H.Experiments.pp_rate
        (H.Experiments.steady_rate k params))
    (H.Experiments.default_kinds params);
  Format.printf "@.detection delay (200 runs):@.";
  List.iter
    (fun k ->
      Format.printf "  %a@." H.Experiments.pp_detection
        (H.Experiments.detection ~runs:200 k params))
    (H.Experiments.default_kinds params);
  Format.printf "@.false deactivations under loss (200 runs each):@.";
  List.iter
    (fun loss ->
      List.iter
        (fun k ->
          Format.printf "  %a@." H.Experiments.pp_reliability
            (H.Experiments.reliability ~runs:200 k params ~loss))
        (H.Experiments.default_kinds params))
    [ 0.01; 0.02; 0.05; 0.1; 0.2 ];
  Format.printf
    "@.=== ablation: bursty vs independent loss (same 5%% average) ===@.@.";
  let bursty = Sim.Loss.gilbert ~p_gb:0.01 ~p_bg:0.19 () in
  List.iter
    (fun k ->
      let b =
        H.Experiments.reliability_model ~runs:200 k params ~model:bursty
      in
      let u =
        H.Experiments.reliability ~runs:200 k params
          ~loss:(Sim.Loss.expected_loss bursty)
      in
      Format.printf
        "  %-14s bursty %3d/200 false detections, independent %3d/200@."
        (H.Runtime.kind_name k) b.H.Experiments.false_detections
        u.H.Experiments.false_detections)
    (H.Experiments.default_kinds params);
  Format.printf "@.=== expanding protocol: join latency (tmin=5, tmax=10) ===@.@.";
  Format.printf "  %a@." H.Experiments.pp_join
    (H.Experiments.join_latency (H.Params.make ~tmin:5 ~tmax:10 ()));
  Format.printf
    "@.=== failure-detector QoS (follow-up work; period 10, 5%% loss) ===@.@.";
  List.iter
    (fun probes ->
      List.iter
        (fun r -> Format.printf "  %a@." Fd.Qos.pp_tradeoff r)
        (Fd.Qos.margin_sweep ~runs:40 ~margins:[ 1.0; 4.0 ] ~probes ()))
    [ 0; 3 ];
  Format.printf "@.=== ablation: acceleration depth (halving, tmax=10) ===@.@.";
  List.iter
    (fun ratio ->
      let tmin = max 1 (10 / ratio) in
      let p = H.Params.make ~tmin ~tmax:10 () in
      let rate = H.Experiments.steady_rate H.Runtime.Halving p in
      let det = H.Experiments.detection ~runs:100 H.Runtime.Halving p in
      let rel =
        H.Experiments.reliability ~runs:100 H.Runtime.Halving p ~loss:0.05
      in
      Format.printf
        "  tmax/tmin=%d: rate %6.4f  mean detection %6.2f (bound %6.2f)  \
         false rate %4.2f@."
        ratio rate.H.Experiments.msgs_per_time det.H.Experiments.mean_delay
        det.H.Experiments.analytic_bound rel.H.Experiments.false_rate)
    [ 1; 2; 5; 10 ]

(* ------------------------------------------------------------------ *)
(* Part 1b: sequential vs parallel exploration                          *)
(* ------------------------------------------------------------------ *)

(* The two exploration workloads used for the parallel-engine comparison:
   the binary protocol with its R1 watchdogs (small space, deep levels)
   and the static protocol with two participants — three automata, the
   "ternary" configuration — whose ~240k-state space is the largest
   explored in this harness. *)
let binary_system () =
  let params = H.Params.make ~tmin:1 ~tmax:10 () in
  let model =
    H.Ta_models.build ~with_r1_monitors:true H.Ta_models.Binary params
  in
  Ta.Semantics.system (Ta.Semantics.compile model)

let ternary_system () =
  let params = H.Params.make ~n:2 ~tmin:2 ~tmax:6 () in
  let model = H.Ta_models.build H.Ta_models.Static params in
  Ta.Semantics.system (Ta.Semantics.compile model)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Best-of-[n] wall clock: scheduler and GC noise on a shared host only
   ever inflates a sample, so the minimum is the least-biased estimate
   of engine cost.  The returned value is from the first run. *)
let time_best n f =
  let r0, t0 = time f in
  let best = ref t0 in
  for _ = 2 to n do
    let _, t = time f in
    if t < !best then best := t
  done;
  (r0, !best)

(* ------------------------------------------------------------------ *)
(* Part 1c: partial-order reduction — full vs ample-set state counts    *)
(* ------------------------------------------------------------------ *)

(* One measurement point per shipped PA variant; static also gets the
   two-participant instance, the genuinely concurrent configuration
   where the reduction passes 4x. *)
let por_points =
  [
    (H.Pa_models.Binary, 1, 2, 4);
    (H.Pa_models.Revised, 1, 2, 4);
    (H.Pa_models.Two_phase, 1, 2, 4);
    (H.Pa_models.Static, 1, 2, 4);
    (H.Pa_models.Static, 2, 2, 4);
    (H.Pa_models.Expanding, 1, 2, 4);
    (H.Pa_models.Dynamic, 1, 2, 4);
  ]

let por_report () =
  Format.printf
    "@.=== partial-order reduction: full vs ample-set exploration ===@.@.";
  let rows =
    List.map
      (fun (v, n, tmin, tmax) ->
        let params = H.Params.make ~n ~tmin ~tmax () in
        let full, t_full = time (fun () -> H.Pa_verify.explore v params) in
        let red, t_red =
          time (fun () -> H.Pa_verify.explore ~reduce:true v params)
        in
        let ratio =
          float_of_int full.H.Pa_verify.states
          /. float_of_int red.H.Pa_verify.states
        in
        Format.printf
          "PA %-10s n=%d (%d,%d): full %8d states %8d trans %7.2fs | \
           reduced %8d states %8d trans %7.2fs | %.2fx@."
          (H.Pa_models.variant_name v)
          n tmin tmax full.H.Pa_verify.states full.H.Pa_verify.transitions
          t_full red.H.Pa_verify.states red.H.Pa_verify.transitions t_red
          ratio;
        (v, n, tmin, tmax, full, red, ratio))
      por_points
  in
  (* machine-readable summary (deterministic: timings excluded) *)
  print_string "{\"tool\":\"bench\",\"section\":\"por\",\"rows\":[";
  List.iteri
    (fun k (v, n, tmin, tmax, full, red, ratio) ->
      if k > 0 then print_string ",";
      Printf.printf
        "{\"variant\":\"%s\",\"n\":%d,\"tmin\":%d,\"tmax\":%d,\"full_states\":%d,\"reduced_states\":%d,\"reduction_ratio\":%.2f}"
        (H.Pa_models.variant_name v)
        n tmin tmax full.H.Pa_verify.states red.H.Pa_verify.states ratio)
    rows;
  print_string "]}\n"

let parallel_report () =
  Format.printf
    "@.=== parallel exploration: sequential vs 2/4 domains ===@.@.";
  Format.printf "(host reports %d recommended domains)@.@."
    (Domain.recommended_domain_count ());
  List.iter
    (fun (name, sys) ->
      let (seq : (Ta.Semantics.config, Ta.Semantics.label) Mc.Explore.space), t_seq =
        time (fun () -> Mc.Explore.space sys)
      in
      Format.printf "%-28s %8d states  seq %7.3fs@." name
        (Lts.Graph.num_states seq.Mc.Explore.lts)
        t_seq;
      List.iter
        (fun d ->
          let (par, stats), t_par =
            time (fun () -> Mc.Pexplore.space_stats ~domains:d sys)
          in
          let identical =
            Marshal.to_string
              (seq.Mc.Explore.lts, seq.Mc.Explore.states, seq.Mc.Explore.complete)
              []
            = Marshal.to_string
                (par.Mc.Explore.lts, par.Mc.Explore.states, par.Mc.Explore.complete)
                []
          in
          Format.printf
            "%-28s %8s         %d dom %7.3fs  speedup %5.2fx  %s  (peak \
             frontier %d)@."
            "" "" d t_par (t_seq /. t_par)
            (if identical then "byte-identical" else "MISMATCH")
            stats.Mc.Pexplore.peak_frontier)
        [ 2; 4 ])
    [ ("binary+monitors(1,10)", binary_system ());
      ("ternary static n=2 (2,6)", ternary_system ()) ]

(* ------------------------------------------------------------------ *)
(* Part 1d: engine sweep — BENCH_pr6.json                               *)
(* ------------------------------------------------------------------ *)

(* VmHWM from /proc/self/status in kB (0 when unavailable): the peak
   resident set over the whole process life, sampled after the sweep. *)
let peak_rss_kb () =
  try
    let ic = open_in "/proc/self/status" in
    let rec go acc =
      match input_line ic with
      | exception End_of_file -> acc
      | line ->
          if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
            go
              (int_of_string
                 (String.concat ""
                    (List.filter_map
                       (fun c ->
                         if c >= '0' && c <= '9' then
                           Some (String.make 1 c)
                         else None)
                       (List.of_seq (String.to_seq line)))))
          else go acc
    in
    let r = go 0 in
    close_in ic;
    r
  with Sys_error _ -> 0

(* Simulator event throughput: one long deterministic run, counting the
   full protocol/channel trace. *)
let events_per_sec () =
  let params = H.Params.make ~tmin:2 ~tmax:10 () in
  let cfg =
    H.Runtime.config ~kind:H.Runtime.Halving ~duration:50_000.0 params
  in
  let events = ref 0 in
  let _, t = time (fun () -> H.Runtime.run ~on_event:(fun _ -> incr events) cfg) in
  (!events, float_of_int !events /. t)

(* The six-variant sweep behind the PR's acceptance criterion: for every
   shipped TA protocol, the sequential engine vs the level-synchronised
   and the work-stealing parallel engines at 1/2/4 domains, with replay
   byte-identity checked against the sequential space on every run. *)
let pr6_report () =
  let sweep_domains = [ 1; 2; 4 ] in
  let sweep =
    List.map
      (fun v -> (v, H.Params.make ~tmin:2 ~tmax:8 ()))
      H.Ta_models.all_variants
  in
  Format.printf
    "@.=== PR6: work-stealing vs level-sync engine sweep ===@.@.";
  Format.printf "(host reports %d recommended domains)@.@."
    (Domain.recommended_domain_count ());
  let rows =
    List.map
      (fun (v, params) ->
        let sys =
          Ta.Semantics.system
            (Ta.Semantics.compile (H.Ta_models.build v params))
        in
        let (seq : (Ta.Semantics.config, Ta.Semantics.label) Mc.Explore.space),
            t_seq =
          time_best 3 (fun () -> Mc.Explore.space sys)
        in
        let states = Lts.Graph.num_states seq.Mc.Explore.lts in
        let transitions = Lts.Graph.num_transitions seq.Mc.Explore.lts in
        let seq_bytes =
          Marshal.to_string
            (seq.Mc.Explore.lts, seq.Mc.Explore.states, seq.Mc.Explore.complete)
            [ Marshal.No_sharing ]
        in
        Format.printf "%-14s %a: %8d states  seq %7.3fs (%.0f st/s)@."
          (H.Ta_models.variant_name v)
          H.Params.pp params states t_seq
          (float_of_int states /. t_seq);
        let runs =
          List.concat_map
            (fun workstealing ->
              List.map
                (fun d ->
                  let (par, stats), t =
                    time_best 3 (fun () ->
                        Mc.Pexplore.space_stats ~domains:d ~workstealing sys)
                  in
                  let identical =
                    String.equal seq_bytes
                      (Marshal.to_string
                         (par.Mc.Explore.lts, par.Mc.Explore.states,
                          par.Mc.Explore.complete)
                         [ Marshal.No_sharing ])
                  in
                  Format.printf
                    "  %-12s %d dom %7.3fs  speedup %5.2fx  %s  (%d steals)@."
                    stats.Mc.Pexplore.engine d t (t_seq /. t)
                    (if identical then "byte-identical" else "MISMATCH")
                    stats.Mc.Pexplore.steals;
                  (stats.Mc.Pexplore.engine, d, t, stats, identical))
                sweep_domains)
            [ true; false ]
        in
        (v, params, states, transitions, t_seq, runs))
      sweep
  in
  let wall engine d =
    List.fold_left
      (fun acc (_, _, _, _, _, runs) ->
        List.fold_left
          (fun acc (e, d', t, _, _) ->
            if String.equal e engine && d' = d then acc +. t else acc)
          acc runs)
      0. rows
  in
  let ws4 = wall "workstealing" 4 and lv4 = wall "levels" 4 in
  Format.printf
    "@.sweep wall at 4 domains: workstealing %.3fs vs levels %.3fs (%.2fx)@."
    ws4 lv4 (lv4 /. ws4);
  let n_events, ev_rate = events_per_sec () in
  Format.printf "simulator: %d events, %.0f events/s@." n_events ev_rate;
  let por =
    List.map
      (fun (v, n, tmin, tmax) ->
        let params = H.Params.make ~n ~tmin ~tmax () in
        let full = H.Pa_verify.explore v params in
        let red = H.Pa_verify.explore ~reduce:true v params in
        ( v, n, tmin, tmax, full.H.Pa_verify.states, red.H.Pa_verify.states ))
      por_points
  in
  let rss = peak_rss_kb () in
  Format.printf "peak RSS: %d kB@." rss;
  (* machine-readable artifact *)
  let oc = open_out "BENCH_pr6.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\"tool\":\"bench\",\"section\":\"pr6\",\n";
  p " \"host_recommended_domains\":%d,\"samples_per_cell\":3,\n"
    (Domain.recommended_domain_count ());
  p " \"sweep\":[\n";
  List.iteri
    (fun k (v, params, states, transitions, t_seq, runs) ->
      if k > 0 then p ",\n";
      p
        "  {\"variant\":\"%s\",\"tmin\":%d,\"tmax\":%d,\"n\":%d,\"states\":%d,\"transitions\":%d,\"seq_wall_s\":%.4f,\"seq_states_per_sec\":%.0f,\"runs\":["
        (H.Ta_models.variant_name v)
        params.H.Params.tmin params.H.Params.tmax params.H.Params.n states
        transitions t_seq
        (float_of_int states /. t_seq);
      List.iteri
        (fun j (engine, d, t, (stats : Mc.Pexplore.stats), identical) ->
          if j > 0 then p ",";
          p
            "{\"engine\":\"%s\",\"domains\":%d,\"wall_s\":%.4f,\"states_per_sec\":%.0f,\"speedup_vs_seq\":%.3f,\"byte_identical\":%b,\"steals\":%d}"
            engine d t
            (float_of_int states /. t)
            (t_seq /. t) identical stats.Mc.Pexplore.steals)
        runs;
      p "]}")
    rows;
  p "\n ],\n";
  p " \"ws4_wall_s\":%.4f,\"levels4_wall_s\":%.4f,\"ws4_speedup_vs_levels4\":%.3f,\"ws_beats_levels_at_4\":%b,\n"
    ws4 lv4 (lv4 /. ws4) (ws4 < lv4);
  p " \"sim_events\":%d,\"sim_events_per_sec\":%.0f,\n" n_events ev_rate;
  p " \"peak_rss_kb\":%d,\n" rss;
  p " \"por\":[";
  List.iteri
    (fun k (v, n, tmin, tmax, full, red) ->
      if k > 0 then p ",";
      p
        "{\"variant\":\"%s\",\"n\":%d,\"tmin\":%d,\"tmax\":%d,\"full_states\":%d,\"reduced_states\":%d,\"reduction_ratio\":%.2f}"
        (H.Pa_models.variant_name v)
        n tmin tmax full red
        (float_of_int full /. float_of_int red))
    por;
  p "]}\n";
  close_out oc;
  Format.printf "wrote BENCH_pr6.json@."

(* ------------------------------------------------------------------ *)
(* Part 1e: resilience costs — BENCH_pr7.json                           *)
(* ------------------------------------------------------------------ *)

(* What the resilience layer costs when nothing goes wrong, and what it
   buys when something does: budget-poll overhead on a clean run, wall
   time of forced degradation-ladder walks, and checkpoint
   write/restore cost at the half-explored point — all on the dynamic
   n=1 model, the largest shipped TA space. *)
let pr7_report () =
  let params = H.Params.make ~tmin:1 ~tmax:40 () in
  let sys =
    Ta.Semantics.system
      (Ta.Semantics.compile (H.Ta_models.build H.Ta_models.Dynamic params))
  in
  Format.printf
    "@.=== PR7: resilience costs (dynamic n=1, tmin=1 tmax=40) ===@.@.";
  let (seq : (Ta.Semantics.config, Ta.Semantics.label) Mc.Explore.space),
      t_plain =
    time_best 3 (fun () -> Mc.Explore.space sys)
  in
  let states = Lts.Graph.num_states seq.Mc.Explore.lts in
  let seq_bytes =
    Marshal.to_string
      (seq.Mc.Explore.lts, seq.Mc.Explore.states, seq.Mc.Explore.complete)
      [ Marshal.No_sharing ]
  in
  let _, t_budget =
    time_best 3 (fun () ->
        Mc.Explore.space_run ~budget:(Mc.Budget.unlimited ()) sys)
  in
  let seq_overhead = (t_budget -. t_plain) /. t_plain in
  Format.printf
    "sequential %d states: plain %.3fs, budgeted %.3fs (%+.1f%% poll \
     overhead)@."
    states t_plain t_budget (100. *. seq_overhead);
  let _, t_par_plain =
    time_best 3 (fun () -> Mc.Pexplore.count ~domains:4 sys)
  in
  let _, t_par_budget =
    time_best 3 (fun () ->
        Mc.Pexplore.count ~domains:4 ~budget:(Mc.Budget.unlimited ()) sys)
  in
  let par_overhead = (t_par_budget -. t_par_plain) /. t_par_plain in
  Format.printf
    "parallel count (4 dom): plain %.3fs, budgeted %.3fs (%+.1f%% poll \
     overhead)@."
    t_par_plain t_par_budget (100. *. par_overhead);
  (* forced degradation: a probe that reports a memory trip exactly
     [shots] times walks the store that many rungs down the ladder *)
  let memory_shots shots =
    let left = Atomic.make shots in
    Mc.Budget.make
      ~probe:(fun () ->
        if Atomic.fetch_and_add left (-1) > 0 then Some (Mc.Budget.Memory 1)
        else None)
      ~check_every:1 ()
  in
  let ladder shots =
    let ((count, complete), stats), t =
      time (fun () ->
          Mc.Pexplore.count_stats ~domains:4 ~budget:(memory_shots shots) sys)
    in
    Format.printf "ladder x%d (%s): %d states %s in %.3fs@." shots
      (String.concat " -> " ("exact" :: stats.Mc.Pexplore.degraded))
      count
      (if complete then "complete" else "PARTIAL")
      t;
    (shots, stats.Mc.Pexplore.degraded, count, complete, t)
  in
  let lad1 = ladder 1 in
  let lad2 = ladder 2 in
  let ladders = [ lad1; lad2 ] in
  (* checkpoint cost at the half-explored point *)
  let stop_at_half =
    let left = Atomic.make (states / 2) in
    Mc.Budget.make
      ~probe:(fun () ->
        if Atomic.fetch_and_add left (-1) > 0 then None
        else Some Mc.Budget.Cancelled)
      ~check_every:1 ()
  in
  match Mc.Explore.space_run ~budget:stop_at_half sys with
  | Mc.Explore.Done _ -> failwith "pr7 bench: expected a suspension"
  | Mc.Explore.Suspended (_, cur) ->
      let file = Filename.temp_file "hbckpt" ".ck" in
      let kind = "bench/pr7/dynamic" in
      let (), t_save = time (fun () -> Mc.Checkpoint.save ~file ~kind cur) in
      let size = (Unix.stat file).Unix.st_size in
      let (cur' : (Ta.Semantics.config, Ta.Semantics.label) Mc.Explore.cursor),
          t_load =
        time (fun () ->
            match Mc.Checkpoint.load ~file ~kind with
            | Ok c -> c
            | Error e -> failwith e)
      in
      Sys.remove file;
      let r, t_resume = time (fun () -> Mc.Explore.space_run ~resume:cur' sys) in
      let resumed_identical =
        match r with
        | Mc.Explore.Done sp ->
            String.equal seq_bytes
              (Marshal.to_string
                 (sp.Mc.Explore.lts, sp.Mc.Explore.states, sp.Mc.Explore.complete)
                 [ Marshal.No_sharing ])
        | Mc.Explore.Suspended _ -> false
      in
      Format.printf
        "checkpoint at %d/%d states: save %.3fs (%d bytes), load %.3fs, \
         resume %.3fs, %s@."
        (Mc.Explore.cursor_states cur)
        states t_save size t_load t_resume
        (if resumed_identical then "byte-identical" else "MISMATCH");
      let oc = open_out "BENCH_pr7.json" in
      let p fmt = Printf.fprintf oc fmt in
      p "{\"tool\":\"bench\",\"section\":\"pr7\",\n";
      p " \"model\":\"dynamic\",\"n\":1,\"tmin\":1,\"tmax\":40,\"states\":%d,\n"
        states;
      p
        " \"seq_plain_wall_s\":%.4f,\"seq_budget_wall_s\":%.4f,\"seq_poll_overhead\":%.4f,\n"
        t_plain t_budget seq_overhead;
      p
        " \"par4_plain_wall_s\":%.4f,\"par4_budget_wall_s\":%.4f,\"par4_poll_overhead\":%.4f,\n"
        t_par_plain t_par_budget par_overhead;
      p " \"degradation\":[";
      List.iteri
        (fun k (shots, rungs, count, complete, t) ->
          if k > 0 then p ",";
          p
            "{\"memory_trips\":%d,\"rungs\":[%s],\"states\":%d,\"complete\":%b,\"wall_s\":%.4f}"
            shots
            (String.concat ","
               (List.map (fun r -> Printf.sprintf "\"%s\"" r) rungs))
            count complete t)
        ladders;
      p "],\n";
      p
        " \"checkpoint\":{\"at_states\":%d,\"bytes\":%d,\"save_wall_s\":%.4f,\"load_wall_s\":%.4f,\"resume_wall_s\":%.4f,\"resumed_byte_identical\":%b}}\n"
        (Mc.Explore.cursor_states cur)
        size t_save t_load t_resume resumed_identical;
      close_out oc;
      Format.printf "wrote BENCH_pr7.json@."

(* ------------------------------------------------------------------ *)
(* Part 1f: static slicing — BENCH_pr8.json                             *)
(* ------------------------------------------------------------------ *)

(* Cost/benefit of the static slice, alone and composed with the
   ample-set reduction: the TA family at the pr6 sweep point (where the
   property-free slice wins through clock activity and dead writes),
   the PA family at the POR measurement points (slice alone, POR alone,
   slice-then-POR), plus the analysis-cache counters so the memoisation
   payoff is on record next to the numbers it pays for. *)
let pr8_report () =
  Format.printf "@.=== PR8: property-driven slicing sweep ===@.@.";
  let ta_rows =
    List.map
      (fun v ->
        let params = H.Params.make ~tmin:2 ~tmax:8 () in
        let model = H.Ta_models.build v params in
        let full_sys = Ta.Semantics.system (Ta.Semantics.compile model) in
        let (full : (Ta.Semantics.config, Ta.Semantics.label) Mc.Explore.space),
            t_full =
          time_best 3 (fun () -> Mc.Explore.space full_sys)
        in
        let sl = Slice.Ta.slice model in
        let ssys =
          Slice.Ta.system sl (Ta.Semantics.compile sl.Slice.Ta.model)
        in
        let sliced, t_slice = time_best 3 (fun () -> Mc.Explore.space ssys) in
        let fs = Lts.Graph.num_states full.Mc.Explore.lts
        and ft = Lts.Graph.num_transitions full.Mc.Explore.lts
        and ss = Lts.Graph.num_states sliced.Mc.Explore.lts
        and st = Lts.Graph.num_transitions sliced.Mc.Explore.lts in
        Format.printf
          "ta %-12s %a: %7d -> %6d states (%.2fx)  %8d -> %7d trans  %7.3fs \
           -> %6.3fs (%.0f st/s sliced)@."
          (H.Ta_models.variant_name v)
          H.Params.pp params fs ss
          (float_of_int fs /. float_of_int ss)
          ft st t_full t_slice
          (float_of_int ss /. t_slice);
        (v, params, fs, ft, t_full, ss, st, t_slice))
      H.Ta_models.all_variants
  in
  Format.printf "@.";
  let pa_rows =
    List.map
      (fun (v, n, tmin, tmax) ->
        let params = H.Params.make ~n ~tmin ~tmax () in
        let full, t_full = time_best 3 (fun () -> H.Pa_verify.explore v params) in
        let slice, t_slice =
          time_best 3 (fun () -> H.Pa_verify.explore ~slice:true v params)
        in
        let por, t_por =
          time_best 3 (fun () -> H.Pa_verify.explore ~reduce:true v params)
        in
        let both, t_both =
          time_best 3 (fun () ->
              H.Pa_verify.explore ~slice:true ~reduce:true v params)
        in
        let r a b =
          float_of_int a.H.Pa_verify.states
          /. float_of_int b.H.Pa_verify.states
        in
        Format.printf
          "pa %-12s n=%d (%d,%d): %6d states  slice %.2fx  por %.2fx  \
           slice+por %.2fx (%d states, %.0f st/s)@."
          (H.Pa_models.variant_name v)
          n tmin tmax full.H.Pa_verify.states (r full slice) (r full por)
          (r full both) both.H.Pa_verify.states
          (float_of_int both.H.Pa_verify.states /. t_both);
        (v, n, tmin, tmax, (full, t_full), (slice, t_slice), (por, t_por),
         (both, t_both)))
      por_points
  in
  let cache = H.Analysis_cache.stats () in
  Format.printf "@.%a@." H.Analysis_cache.pp cache;
  let rss = peak_rss_kb () in
  Format.printf "peak RSS: %d kB@." rss;
  let oc = open_out "BENCH_pr8.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\"tool\":\"bench\",\"section\":\"pr8\",\"samples_per_cell\":3,\n";
  p " \"ta\":[\n";
  List.iteri
    (fun k (v, (params : H.Params.t), fs, ft, t_full, ss, st, t_slice) ->
      if k > 0 then p ",\n";
      p
        "  {\"variant\":\"%s\",\"tmin\":%d,\"tmax\":%d,\"n\":%d,\"full_states\":%d,\"full_transitions\":%d,\"full_wall_s\":%.4f,\"sliced_states\":%d,\"sliced_transitions\":%d,\"sliced_wall_s\":%.4f,\"state_ratio\":%.2f,\"transition_ratio\":%.2f,\"sliced_states_per_sec\":%.0f}"
        (H.Ta_models.variant_name v)
        params.H.Params.tmin params.H.Params.tmax params.H.Params.n fs ft
        t_full ss st t_slice
        (float_of_int fs /. float_of_int ss)
        (float_of_int ft /. float_of_int st)
        (float_of_int ss /. t_slice))
    ta_rows;
  p "\n ],\n";
  p " \"pa\":[\n";
  List.iteri
    (fun k
         ( v, n, tmin, tmax, (full, t_full), (slice, t_slice), (por, t_por),
           (both, t_both) ) ->
      if k > 0 then p ",\n";
      let cell tag (s : H.Pa_verify.explore_stats) t =
        p
          "\"%s\":{\"states\":%d,\"transitions\":%d,\"wall_s\":%.4f,\"states_per_sec\":%.0f,\"state_ratio\":%.2f,\"transition_ratio\":%.2f}"
          tag s.H.Pa_verify.states s.H.Pa_verify.transitions t
          (float_of_int s.H.Pa_verify.states /. t)
          (float_of_int full.H.Pa_verify.states
          /. float_of_int s.H.Pa_verify.states)
          (float_of_int full.H.Pa_verify.transitions
          /. float_of_int s.H.Pa_verify.transitions)
      in
      p "  {\"variant\":\"%s\",\"n\":%d,\"tmin\":%d,\"tmax\":%d,"
        (H.Pa_models.variant_name v)
        n tmin tmax;
      cell "full" full t_full;
      p ",";
      cell "slice" slice t_slice;
      p ",";
      cell "por" por t_por;
      p ",";
      cell "slice_por" both t_both;
      p "}")
    pa_rows;
  p "\n ],\n";
  p " \"cache\":%s,\n" (H.Analysis_cache.to_json cache);
  p " \"peak_rss_kb\":%d}\n" rss;
  close_out oc;
  Format.printf "wrote BENCH_pr8.json@."

(* ------------------------------------------------------------------ *)
(* Part 1g: the dense-time zone engine — BENCH_pr9.json                 *)
(* ------------------------------------------------------------------ *)

(* Discrete vs zone-graph exploration on the six heartbeat variants,
   plus FISCHER-n scaling with and without inclusion subsumption.

   The variant sweep runs expanding/dynamic at n=2, where the discrete
   digitised state space exceeds the 1M-state cap (the per-tick delay
   interleavings of two peers blow it up) while the zone graph
   completes: the zone rows are exact where the discrete rows are
   cut short, which is the point of the engine.  The four small
   variants stay at n=1, where discrete wins on raw wall clock —
   both directions are on record.

   FISCHER-n is the classic dense-time workload (the protocol is
   *wrong* under any digitisation coarser than the strict x>k
   boundary, so only the zone engine checks it here); the ±subsumption
   columns isolate what the inclusion waiting-list discipline buys. *)

let pr9_variant_points =
  [
    (H.Ta_models.Binary, 1);
    (H.Ta_models.Revised, 1);
    (H.Ta_models.Two_phase, 1);
    (H.Ta_models.Static, 1);
    (H.Ta_models.Expanding, 2);
    (H.Ta_models.Dynamic, 2);
  ]

let pr9_discrete_cap = 1_000_000

let pr9_report () =
  Format.printf "@.=== PR9: discrete vs dense-time zone exploration ===@.@.";
  let flag b = if b then "" else "*" in
  let variant_rows =
    List.map
      (fun (v, n) ->
        let params = H.Params.make ~n ~tmin:1 ~tmax:2 () in
        let model = H.Ta_models.build v params in
        let sys = Ta.Semantics.system (Ta.Semantics.compile model) in
        let (dc, dcomp), dt =
          time_best 3 (fun () ->
              Mc.Explore.count ~max_states:pr9_discrete_cap sys)
        in
        let z = Zone.Sym.compile model in
        let stats = Zone.Reach.new_stats () in
        let (zc, zcomp), zt =
          time_best 3 (fun () ->
              let s = Zone.Reach.new_stats () in
              let r = Zone.Reach.count ~max_states:pr9_discrete_cap ~stats:s z in
              stats.Zone.Reach.states <- s.Zone.Reach.states;
              stats.Zone.Reach.transitions <- s.Zone.Reach.transitions;
              stats.Zone.Reach.subsumed <- s.Zone.Reach.subsumed;
              r)
        in
        Format.printf
          "%-10s n=%d (1,2): discrete %8d%s states %7.2fs   zone %7d%s \
           zones %7.2fs  (%d subsumed)@."
          (H.Ta_models.variant_name v)
          n dc (flag dcomp) dt zc (flag zcomp) zt stats.Zone.Reach.subsumed;
        (v, n, (dc, dcomp, dt), (zc, zcomp, zt), stats))
      pr9_variant_points
  in
  Format.printf "@.";
  let fischer_rows =
    List.map
      (fun n ->
        let z = Zone.Sym.compile (Fc.fischer ~n ()) in
        let sub_stats = Zone.Reach.new_stats () in
        let (cs, _), ts =
          time_best 3 (fun () ->
              let s = Zone.Reach.new_stats () in
              let r = Zone.Reach.count ~subsume:true ~stats:s z in
              sub_stats.Zone.Reach.subsumed <- s.Zone.Reach.subsumed;
              r)
        in
        let (cn, _), tn =
          time_best 3 (fun () -> Zone.Reach.count ~subsume:false z)
        in
        Format.printf
          "fischer n=%d: subsumption %7d zones %6.2fs (%d subsumed)   \
           equality %7d zones %6.2fs  (%.2fx)@."
          n cs ts sub_stats.Zone.Reach.subsumed cn tn
          (float_of_int cn /. float_of_int cs);
        (n, (cs, ts, sub_stats.Zone.Reach.subsumed), (cn, tn)))
      [ 2; 3; 4; 5; 6 ]
  in
  let rss = peak_rss_kb () in
  Format.printf "@.peak RSS: %d kB@." rss;
  let oc = open_out "BENCH_pr9.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\"tool\":\"bench\",\"section\":\"pr9\",\"samples_per_cell\":3,\n";
  p " \"discrete_cap\":%d,\n" pr9_discrete_cap;
  p " \"variants\":[\n";
  List.iteri
    (fun k (v, n, (dc, dcomp, dt), (zc, zcomp, zt), (stats : Zone.Reach.stats)) ->
      if k > 0 then p ",\n";
      p
        "  {\"variant\":\"%s\",\"tmin\":1,\"tmax\":2,\"n\":%d,\"discrete_states\":%d,\"discrete_complete\":%b,\"discrete_wall_s\":%.4f,\"zone_states\":%d,\"zone_complete\":%b,\"zone_wall_s\":%.4f,\"zone_transitions\":%d,\"subsumed\":%d,\"zone_states_per_sec\":%.0f}"
        (H.Ta_models.variant_name v)
        n dc dcomp dt zc zcomp zt stats.Zone.Reach.transitions
        stats.Zone.Reach.subsumed
        (float_of_int zc /. zt))
    variant_rows;
  p "\n ],\n";
  p " \"fischer\":[\n";
  List.iteri
    (fun k (n, (cs, ts, subsumed), (cn, tn)) ->
      if k > 0 then p ",\n";
      p
        "  {\"n\":%d,\"subsume_zones\":%d,\"subsume_wall_s\":%.4f,\"subsumed\":%d,\"equality_zones\":%d,\"equality_wall_s\":%.4f,\"zone_ratio\":%.2f}"
        n cs ts subsumed cn tn
        (float_of_int cn /. float_of_int cs))
    fischer_rows;
  p "\n ],\n";
  p " \"peak_rss_kb\":%d}\n" rss;
  close_out oc;
  Format.printf "wrote BENCH_pr9.json@."

(* ------------------------------------------------------------------ *)
(* Part 1h: location-sensitive LU extrapolation — BENCH_pr10.json      *)
(* ------------------------------------------------------------------ *)

(* Global vs location-based Extra+LU on the workloads where the zone
   graph is the bottleneck: FISCHER-n scaling (the clock is reset
   before every comparison on the way back to Idle, so per-location
   bounds collapse to -1 over most of the ring and zones merge), and
   the two big heartbeat variants at n=2.  Same subsumption discipline
   in both columns, so the delta is the extrapolation alone.  The
   headline is the largest FISCHER n that completes under the zone cap
   in each mode. *)

let pr10_zone_cap = 2_000_000

let pr10_report () =
  Format.printf
    "@.=== PR10: global vs location-sensitive LU extrapolation ===@.@.";
  let flag b = if b then "" else "*" in
  let measure ~samples model lu =
    let z = Zone.Sym.compile ~lu model in
    let (n, complete), t =
      time_best samples (fun () ->
          Zone.Reach.count ~subsume:true ~max_states:pr10_zone_cap z)
    in
    (n, complete, t)
  in
  let fischer_rows =
    List.map
      (fun n ->
        let model = Fc.fischer ~n () in
        let samples = if n <= 5 then 3 else 1 in
        let gz, gc, gt = measure ~samples model Zone.Sym.Global in
        let lz, lc, lt = measure ~samples model Zone.Sym.Location in
        Format.printf
          "fischer n=%d: global %8d%s zones %7.2fs   location %8d%s zones \
           %7.2fs  (%.2fx)@."
          n gz (flag gc) gt lz (flag lc) lt
          (float_of_int gz /. float_of_int lz);
        (n, samples, (gz, gc, gt), (lz, lc, lt)))
      [ 2; 3; 4; 5; 6; 7; 8 ]
  in
  Format.printf "@.";
  let variant_rows =
    List.map
      (fun v ->
        let params = H.Params.make ~n:2 ~tmin:1 ~tmax:2 () in
        let model = H.Ta_models.build v params in
        let gz, gc, gt = measure ~samples:3 model Zone.Sym.Global in
        let lz, lc, lt = measure ~samples:3 model Zone.Sym.Location in
        Format.printf
          "%-10s n=2 (1,2): global %8d%s zones %7.2fs   location %8d%s \
           zones %7.2fs  (%.2fx)@."
          (H.Ta_models.variant_name v)
          gz (flag gc) gt lz (flag lc) lt
          (float_of_int gz /. float_of_int lz);
        (v, (gz, gc, gt), (lz, lc, lt)))
      [ H.Ta_models.Expanding; H.Ta_models.Dynamic ]
  in
  let max_feasible pick =
    List.fold_left
      (fun acc (n, _, g, l) ->
        let _, complete, _ = pick (g, l) in
        if complete then max acc n else acc)
      0 fischer_rows
  in
  let max_global = max_feasible fst and max_location = max_feasible snd in
  let rss = peak_rss_kb () in
  Format.printf
    "@.max feasible fischer n under %d zones: global %d, location %d@."
    pr10_zone_cap max_global max_location;
  Format.printf "peak RSS: %d kB@." rss;
  let oc = open_out "BENCH_pr10.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\"tool\":\"bench\",\"section\":\"pr10\",\n";
  p " \"zone_cap\":%d,\n" pr10_zone_cap;
  p " \"fischer\":[\n";
  List.iteri
    (fun k (n, samples, (gz, gc, gt), (lz, lc, lt)) ->
      if k > 0 then p ",\n";
      p
        "  {\"n\":%d,\"samples\":%d,\"global_zones\":%d,\"global_complete\":%b,\"global_wall_s\":%.4f,\"location_zones\":%d,\"location_complete\":%b,\"location_wall_s\":%.4f,\"zone_ratio\":%.3f}"
        n samples gz gc gt lz lc lt
        (float_of_int gz /. float_of_int lz))
    fischer_rows;
  p "\n ],\n";
  p " \"variants\":[\n";
  List.iteri
    (fun k (v, (gz, gc, gt), (lz, lc, lt)) ->
      if k > 0 then p ",\n";
      p
        "  {\"variant\":\"%s\",\"tmin\":1,\"tmax\":2,\"n\":2,\"samples\":3,\"global_zones\":%d,\"global_complete\":%b,\"global_wall_s\":%.4f,\"location_zones\":%d,\"location_complete\":%b,\"location_wall_s\":%.4f,\"zone_ratio\":%.3f}"
        (H.Ta_models.variant_name v)
        gz gc gt lz lc lt
        (float_of_int gz /. float_of_int lz))
    variant_rows;
  p "\n ],\n";
  p " \"max_feasible_n\":{\"global\":%d,\"location\":%d},\n" max_global
    max_location;
  p " \"peak_rss_kb\":%d}\n" rss;
  close_out oc;
  Format.printf "wrote BENCH_pr10.json@."

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel timings                                             *)
(* ------------------------------------------------------------------ *)

let check variant tmin tmax req () =
  let params = H.Params.make ~tmin ~tmax () in
  ignore (H.Verify.check variant params req)

let bench_tests =
  Test.make_grouped ~name:"hbproto"
    [
      (* Table 1 kernels: one representative requirement per protocol. *)
      Test.make ~name:"table1/binary-R1(4,10)"
        (Staged.stage (check H.Ta_models.Binary 4 10 H.Requirements.R1));
      Test.make ~name:"table1/binary-R3(10,10)"
        (Staged.stage (check H.Ta_models.Binary 10 10 H.Requirements.R3));
      Test.make ~name:"table1/static-R2(10,10)"
        (Staged.stage (check H.Ta_models.Static 10 10 H.Requirements.R2));
      (* Table 2 kernels. *)
      Test.make ~name:"table2/expanding-R2(5,10)"
        (Staged.stage (check H.Ta_models.Expanding 5 10 H.Requirements.R2));
      Test.make ~name:"table2/dynamic-R2(5,10)"
        (Staged.stage (check H.Ta_models.Dynamic 5 10 H.Requirements.R2));
      (* Fixed-version kernel. *)
      Test.make ~name:"fixed/binary-all(10,10)"
        (Staged.stage (fun () ->
             let params = H.Params.make ~tmin:10 ~tmax:10 () in
             List.iter
               (fun req ->
                 ignore
                   (H.Verify.check ~fixed:true H.Ta_models.Binary params req))
               H.Requirements.all));
      (* Figures. *)
      Test.make ~name:"fig10/cex-extraction"
        (Staged.stage (fun () -> ignore (H.Scenarios.fig10a ())));
      Test.make ~name:"fig11/cex-extraction"
        (Staged.stage (fun () -> ignore (H.Scenarios.fig11 ())));
      Test.make ~name:"fig1/p0-weak-trace-reduction"
        (Staged.stage (fun () ->
             ignore (H.Figures.p0_reduced (H.Params.make ~tmin:1 ~tmax:2 ()))));
      (* Process-algebra encoding. *)
      Test.make ~name:"pa/binary-statespace(10,10)"
        (Staged.stage (fun () ->
             ignore
               (H.Pa_verify.state_count H.Pa_models.Binary
                  (H.Params.make ~tmin:10 ~tmax:10 ()))));
      Test.make ~name:"pa/binary-R2(10,10)"
        (Staged.stage (fun () ->
             ignore
               (H.Pa_verify.check H.Pa_models.Binary
                  (H.Params.make ~tmin:10 ~tmax:10 ())
                  H.Requirements.R2)));
      (* Ample-set reduction: per-state overhead vs states saved. *)
      Test.make ~name:"por/binary-full-explore(2,4)"
        (Staged.stage (fun () ->
             ignore
               (H.Pa_verify.explore H.Pa_models.Binary
                  (H.Params.make ~tmin:2 ~tmax:4 ()))));
      Test.make ~name:"por/binary-reduced-explore(2,4)"
        (Staged.stage (fun () ->
             ignore
               (H.Pa_verify.explore ~reduce:true H.Pa_models.Binary
                  (H.Params.make ~tmin:2 ~tmax:4 ()))));
      (* Substrate microbenchmarks. *)
      Test.make ~name:"ta/statespace-binary(1,10)"
        (Staged.stage (fun () ->
             let params = H.Params.make ~tmin:1 ~tmax:10 () in
             let net =
               Ta.Semantics.compile
                 (H.Ta_models.build H.Ta_models.Binary params)
             in
             ignore (Mc.Explore.count (Ta.Semantics.system net))));
      (* Büchi-product liveness vs plain reachability on the same model:
         the R2-live check on the fixed binary protocol holds, so both
         engines walk the whole product — the overhead over a bare state
         count is the cost of the automaton component. *)
      Test.make ~name:"ltl/binary-plain-reach(4,4)"
        (Staged.stage (fun () ->
             let params = H.Params.make ~tmin:4 ~tmax:4 () in
             let net =
               Ta.Semantics.compile
                 (H.Ta_models.build ~fixed:true H.Ta_models.Binary params)
             in
             ignore (Mc.Explore.count (Ta.Semantics.system net))));
      Test.make ~name:"ltl/binary-R2-product-ndfs(4,4)"
        (Staged.stage (fun () ->
             let params = H.Params.make ~tmin:4 ~tmax:4 () in
             ignore
               (H.Verify.check_live ~fixed:true ~engine:Ltl.Check.Ndfs
                  H.Ta_models.Binary params H.Requirements.R2)));
      Test.make ~name:"ltl/binary-R2-product-scc(4,4)"
        (Staged.stage (fun () ->
             let params = H.Params.make ~tmin:4 ~tmax:4 () in
             ignore
               (H.Verify.check_live ~fixed:true ~engine:Ltl.Check.Scc
                  H.Ta_models.Binary params H.Requirements.R2)));
      (* Sequential vs parallel exploration of the heartbeat spaces. *)
      Test.make ~name:"pexplore/binary-seq"
        (Staged.stage (fun () ->
             ignore (Mc.Explore.space (binary_system ()))));
      Test.make ~name:"pexplore/binary-2dom"
        (Staged.stage (fun () ->
             ignore (Mc.Pexplore.space ~domains:2 (binary_system ()))));
      Test.make ~name:"pexplore/binary-4dom"
        (Staged.stage (fun () ->
             ignore (Mc.Pexplore.space ~domains:4 (binary_system ()))));
      Test.make ~name:"pexplore/ternary-seq"
        (Staged.stage (fun () ->
             ignore (Mc.Explore.space (ternary_system ()))));
      Test.make ~name:"pexplore/ternary-2dom"
        (Staged.stage (fun () ->
             ignore (Mc.Pexplore.space ~domains:2 (ternary_system ()))));
      Test.make ~name:"pexplore/ternary-4dom"
        (Staged.stage (fun () ->
             ignore (Mc.Pexplore.space ~domains:4 (ternary_system ()))));
      (* Explorer table pre-sizing: default 512-slot shards that grow by
         rehashing vs shards pre-sized from the lint pass's static state
         bound, on the largest regenerated model. *)
      Test.make ~name:"presize/ternary-default"
        (Staged.stage (fun () ->
             ignore (Mc.Pexplore.count ~domains:2 (ternary_system ()))));
      Test.make ~name:"presize/ternary-hinted"
        (Staged.stage (fun () ->
             let params = H.Params.make ~n:2 ~tmin:2 ~tmax:6 () in
             let model = H.Ta_models.build H.Ta_models.Static params in
             let expected_states =
               match Lint.Ta_model.static_bound model with
               | Lint.Interval.Finite n -> Some n
               | Lint.Interval.Unbounded -> None
             in
             ignore
               (Mc.Pexplore.count ?expected_states ~domains:2
                  (Ta.Semantics.system (Ta.Semantics.compile model)))));
      Test.make ~name:"mc/regex-compile-step"
        (Staged.stage (fun () ->
             let r =
               Mc.Regex.(
                 seq
                   (star (atom "a" (String.equal "a")))
                   (repeat (atom "b" (String.equal "b")) 8))
             in
             let m = Mc.Regex.compile r in
             let q = ref m.Mc.Monitor.start in
             for _ = 1 to 100 do
               q := m.Mc.Monitor.step !q "a";
               q := m.Mc.Monitor.step !q "b"
             done;
             ignore (m.Mc.Monitor.accepting !q)));
      Test.make ~name:"lts/minimize-fig-component"
        (Staged.stage (fun () ->
             let g =
               H.Figures.p0_component (H.Params.make ~tmin:1 ~tmax:2 ())
             in
             ignore (Lts.Minimize.strong g)));
      Test.make ~name:"sim/steady-run-1000"
        (Staged.stage (fun () ->
             let params = H.Params.make ~tmin:2 ~tmax:10 () in
             ignore
               (H.Runtime.run
                  (H.Runtime.config ~kind:H.Runtime.Halving ~duration:1000.0
                     params))));
      Test.make ~name:"fd/qos-run-500tu"
        (Staged.stage (fun () ->
             ignore
               (Fd.Qos.measure
                  (Fd.Detector.config ~loss:0.05 ~duration:500.0 ()))));
      Test.make ~name:"sim/heap-10k"
        (Staged.stage (fun () ->
             let r = Sim.Rng.create 3L in
             let h = ref Sim.Heap.empty in
             for _ = 1 to 10_000 do
               h := Sim.Heap.insert (Sim.Rng.float r) () !h
             done;
             let rec drain h =
               match Sim.Heap.pop h with None -> () | Some (_, h') -> drain h'
             in
             drain !h));
    ]

let run_benchmarks () =
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~kde:None
      ~stabilize:false ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] bench_tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |])
      instance raw
  in
  Format.printf "@.=== Bechamel timings (monotonic clock) ===@.@.";
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
      in
      Format.printf "  %-44s %14.0f ns/run  (%.3f ms)@." name ns (ns /. 1e6))
    (List.sort compare rows)

let () =
  let has f = Array.exists (String.equal f) Sys.argv in
  let bench_only = has "--bench-only" in
  let tables_only = has "--tables-only" in
  if has "--parallel-only" then parallel_report ()
  else if has "--por-only" then por_report ()
  else if has "--pr6-only" then pr6_report ()
  else if has "--pr7-only" then pr7_report ()
  else if has "--pr8-only" then pr8_report ()
  else if has "--pr9-only" then pr9_report ()
  else if has "--pr10-only" then pr10_report ()
  else begin
    if not bench_only then regenerate ();
    if not tables_only then begin
      parallel_report ();
      por_report ();
      run_benchmarks ()
    end
  end
