(* Tests for the simulation substrate: heap, RNG, statistics, engine and
   lossy links. *)

let check = Alcotest.check

(* --- pairing heap --- *)

let test_heap_basic () =
  let h = Sim.Heap.of_list [ (3.0, "c"); (1.0, "a"); (2.0, "b") ] in
  check Alcotest.int "size" 3 (Sim.Heap.size h);
  check
    Alcotest.(option (pair (float 0.0) string))
    "min" (Some (1.0, "a")) (Sim.Heap.find_min h);
  check
    Alcotest.(list (pair (float 0.0) string))
    "sorted"
    [ (1.0, "a"); (2.0, "b"); (3.0, "c") ]
    (Sim.Heap.to_sorted_list h)

let test_heap_empty () =
  check Alcotest.bool "empty" true (Sim.Heap.is_empty Sim.Heap.empty);
  check Alcotest.bool "pop none" true (Sim.Heap.pop Sim.Heap.empty = None);
  Alcotest.check_raises "delete_min"
    (Invalid_argument "Sim.Heap.delete_min: empty heap") (fun () ->
      ignore (Sim.Heap.delete_min Sim.Heap.empty))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in priority order" ~count:300
    QCheck.(list (pair (float_bound_exclusive 1000.0) small_int))
    (fun items ->
      let h = Sim.Heap.of_list items in
      let drained = List.map fst (Sim.Heap.to_sorted_list h) in
      drained = List.sort compare (List.map fst items))

let prop_heap_size =
  QCheck.Test.make ~name:"heap size equals inserts" ~count:200
    QCheck.(list (float_bound_exclusive 10.0))
    (fun keys ->
      let h = Sim.Heap.of_list (List.map (fun k -> (k, ())) keys) in
      Sim.Heap.size h = List.length keys)

(* --- RNG --- *)

let test_rng_deterministic () =
  let a = Sim.Rng.create 99L and b = Sim.Rng.create 99L in
  for _ = 1 to 50 do
    check Alcotest.int64 "same stream" (Sim.Rng.int64 a) (Sim.Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create 1L and b = Sim.Rng.create 2L in
  check Alcotest.bool "different streams" true
    (Sim.Rng.int64 a <> Sim.Rng.int64 b)

let test_rng_ranges () =
  let r = Sim.Rng.create 5L in
  for _ = 1 to 1000 do
    let f = Sim.Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f;
    let k = Sim.Rng.int r 7 in
    if k < 0 || k >= 7 then Alcotest.failf "int out of range: %d" k;
    let u = Sim.Rng.uniform r 2.0 5.0 in
    if u < 2.0 || u >= 5.0 then Alcotest.failf "uniform out of range: %f" u
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Sim.Rng.int: bound must be positive") (fun () ->
      ignore (Sim.Rng.int r 0))

let test_rng_bool_bias () =
  let r = Sim.Rng.create 11L in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Sim.Rng.bool r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check Alcotest.bool "bias near 0.3" true (rate > 0.27 && rate < 0.33)

(* --- statistics --- *)

let test_stats_moments () =
  let s = Sim.Stats.create () in
  List.iter (Sim.Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check Alcotest.int "count" 8 (Sim.Stats.count s);
  check (Alcotest.float 1e-9) "mean" 5.0 (Sim.Stats.mean s);
  check (Alcotest.float 1e-9) "variance" (32.0 /. 7.0) (Sim.Stats.variance s);
  check (Alcotest.float 1e-9) "min" 2.0 (Sim.Stats.min_value s);
  check (Alcotest.float 1e-9) "max" 9.0 (Sim.Stats.max_value s)

let test_stats_empty () =
  let s = Sim.Stats.create () in
  check (Alcotest.float 0.0) "mean 0" 0.0 (Sim.Stats.mean s);
  check (Alcotest.float 0.0) "variance 0" 0.0 (Sim.Stats.variance s);
  check (Alcotest.float 0.0) "ci 0" 0.0 (Sim.Stats.ci95_half_width s)

let test_percentile () =
  let samples = [ 1.0; 2.0; 3.0; 4.0 ] in
  check (Alcotest.float 1e-9) "p0" 1.0 (Sim.Stats.percentile samples 0.0);
  check (Alcotest.float 1e-9) "p100" 4.0 (Sim.Stats.percentile samples 1.0);
  check (Alcotest.float 1e-9) "median" 2.5 (Sim.Stats.percentile samples 0.5);
  Alcotest.check_raises "empty"
    (Invalid_argument "Sim.Stats.percentile: empty sample list") (fun () ->
      ignore (Sim.Stats.percentile [] 0.5))

let test_histogram () =
  let h = Sim.Stats.histogram ~bins:4 ~lo:0.0 ~hi:4.0 [ 0.5; 1.5; 1.7; 3.9; -1.0; 9.0 ] in
  check Alcotest.(list int) "bins" [ 2; 2; 0; 2 ] (Array.to_list h)

(* --- loss models --- *)

let test_loss_validate () =
  Sim.Loss.validate (Sim.Loss.bernoulli 0.3);
  Sim.Loss.validate (Sim.Loss.gilbert ~p_gb:0.1 ~p_bg:0.5 ());
  Alcotest.check_raises "bad bernoulli"
    (Invalid_argument "Sim.Loss: loss outside [0,1]") (fun () ->
      Sim.Loss.validate (Sim.Loss.bernoulli 1.5));
  Alcotest.check_raises "bad gilbert"
    (Invalid_argument "Sim.Loss: p_gb outside [0,1]") (fun () ->
      Sim.Loss.validate (Sim.Loss.gilbert ~p_gb:(-0.1) ~p_bg:0.5 ()))

let test_loss_expected () =
  check (Alcotest.float 1e-9) "bernoulli" 0.2
    (Sim.Loss.expected_loss (Sim.Loss.bernoulli 0.2));
  (* pi_bad = 0.01 / 0.2 = 0.05, loss = 0.05 * 1.0 *)
  check (Alcotest.float 1e-9) "gilbert" 0.05
    (Sim.Loss.expected_loss (Sim.Loss.gilbert ~p_gb:0.01 ~p_bg:0.19 ()));
  (* Degenerate chain (no transitions ever): the channel stays in Good,
     so the stationary loss is exactly [loss_good]. *)
  check (Alcotest.float 1e-9) "frozen chain" 0.3
    (Sim.Loss.expected_loss
       (Sim.Loss.gilbert ~loss_good:0.3 ~loss_bad:0.9 ~p_gb:0.0 ~p_bg:0.0 ()))

(* Gilbert stationary loss vs a long empirical run.  The tolerance
   allows for burst correlation inflating the variance: with transition
   probabilities bounded away from 0 the correlation time is at most a
   few tens of messages, so 0.05 is ~7 sigma at 50k draws. *)
let prop_loss_expected_matches_empirical =
  QCheck.Test.make ~name:"gilbert expected_loss matches empirical rate"
    ~count:10
    QCheck.(
      quad (float_range 0.1 0.9) (float_range 0.1 0.9) (float_range 0.0 1.0)
        (float_range 0.0 1.0))
    (fun (p_gb, p_bg, loss_good, loss_bad) ->
      let model =
        Sim.Loss.gilbert ~loss_good ~loss_bad ~p_gb ~p_bg ()
      in
      let rng = Sim.Rng.create 0xA5EDL in
      let st = Sim.Loss.start model in
      let n = 50_000 in
      let dropped = ref 0 in
      for _ = 1 to n do
        if Sim.Loss.drops model st rng then incr dropped
      done;
      let empirical = float_of_int !dropped /. float_of_int n in
      Float.abs (empirical -. Sim.Loss.expected_loss model) < 0.05)

let test_loss_empirical_rate () =
  let rng = Sim.Rng.create 77L in
  List.iter
    (fun model ->
      let st = Sim.Loss.start model in
      let drops = ref 0 in
      let n = 50_000 in
      for _ = 1 to n do
        if Sim.Loss.drops model st rng then incr drops
      done;
      let rate = float_of_int !drops /. float_of_int n in
      let expected = Sim.Loss.expected_loss model in
      check Alcotest.bool
        (Printf.sprintf "empirical %.3f near expected %.3f" rate expected)
        true
        (abs_float (rate -. expected) < 0.01))
    [ Sim.Loss.bernoulli 0.1; Sim.Loss.gilbert ~p_gb:0.02 ~p_bg:0.18 () ]

let test_loss_burstiness () =
  (* Gilbert losses cluster: the probability that a loss is followed by
     another loss exceeds the average rate. *)
  let model = Sim.Loss.gilbert ~p_gb:0.01 ~p_bg:0.19 () in
  let rng = Sim.Rng.create 13L in
  let st = Sim.Loss.start model in
  let prev = ref false in
  let after_loss = ref 0 and after_loss_lost = ref 0 in
  for _ = 1 to 100_000 do
    let d = Sim.Loss.drops model st rng in
    if !prev then begin
      incr after_loss;
      if d then incr after_loss_lost
    end;
    prev := d
  done;
  let conditional =
    float_of_int !after_loss_lost /. float_of_int !after_loss
  in
  check Alcotest.bool
    (Printf.sprintf "P(loss|loss) = %.2f well above average 0.05" conditional)
    true (conditional > 0.5)

(* --- engine --- *)

let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let note tag () = log := (tag, Sim.Engine.now e) :: !log in
  ignore (Sim.Engine.schedule e ~delay:3.0 (note "c"));
  ignore (Sim.Engine.schedule e ~delay:1.0 (note "a"));
  ignore (Sim.Engine.schedule e ~delay:2.0 (note "b"));
  Sim.Engine.run e;
  check
    Alcotest.(list (pair string (float 0.0)))
    "time order"
    [ ("a", 1.0); ("b", 2.0); ("c", 3.0) ]
    (List.rev !log);
  check Alcotest.int "executed" 3 (Sim.Engine.events_executed e)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let t = Sim.Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Sim.Engine.cancel t;
  Sim.Engine.run e;
  check Alcotest.bool "cancelled" false !fired;
  check Alcotest.int "not counted" 0 (Sim.Engine.events_executed e)

let test_engine_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let rec beat () =
    incr count;
    ignore (Sim.Engine.schedule e ~delay:1.0 beat)
  in
  ignore (Sim.Engine.schedule e ~delay:1.0 beat);
  Sim.Engine.run ~until:5.5 e;
  check Alcotest.int "five beats" 5 !count;
  check (Alcotest.float 1e-9) "clock at last event" 5.0 (Sim.Engine.now e)

let test_engine_nested_scheduling () =
  let e = Sim.Engine.create () in
  let result = ref 0.0 in
  ignore
    (Sim.Engine.schedule e ~delay:2.0 (fun () ->
         ignore
           (Sim.Engine.schedule e ~delay:3.0 (fun () ->
                result := Sim.Engine.now e))));
  Sim.Engine.run e;
  check (Alcotest.float 1e-9) "relative to fire time" 5.0 !result

let test_engine_errors () =
  let e = Sim.Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.Engine.schedule: negative delay") (fun () ->
      ignore (Sim.Engine.schedule e ~delay:(-1.0) (fun () -> ())));
  Alcotest.check_raises "past time"
    (Invalid_argument "Sim.Engine.at: time in the past") (fun () ->
      ignore (Sim.Engine.schedule e ~delay:5.0 (fun () -> ()));
      Sim.Engine.run e;
      ignore (Sim.Engine.at e ~time:1.0 (fun () -> ())))

(* --- lossy links --- *)

let test_net_delivers_in_window () =
  let e = Sim.Engine.create ~seed:3L () in
  let received = ref [] in
  let link =
    Sim.Net.create e ~delay_lo:1.0 ~delay_hi:2.0
      ~deliver:(fun x -> received := (x, Sim.Engine.now e) :: !received)
      ()
  in
  Sim.Net.send link "m1";
  Sim.Net.send link "m2";
  Sim.Engine.run e;
  check Alcotest.int "both delivered" 2 (List.length !received);
  List.iter
    (fun (_, at) ->
      if at < 1.0 || at > 2.0 then Alcotest.failf "delivery at %f" at)
    !received;
  check Alcotest.int "sent" 2 (Sim.Net.sent link);
  check Alcotest.int "delivered" 2 (Sim.Net.delivered link);
  check Alcotest.int "lost" 0 (Sim.Net.lost link)

let test_net_loss_accounting () =
  let e = Sim.Engine.create ~seed:8L () in
  let delivered = ref 0 in
  let link =
    Sim.Net.create e ~loss:0.5 ~delay_lo:0.0 ~delay_hi:1.0
      ~deliver:(fun () -> incr delivered)
      ()
  in
  for _ = 1 to 1000 do
    Sim.Net.send link ()
  done;
  Sim.Engine.run e;
  check Alcotest.int "conservation" 1000
    (Sim.Net.delivered link + Sim.Net.lost link);
  check Alcotest.int "delivered callback count" (Sim.Net.delivered link) !delivered;
  let rate = float_of_int (Sim.Net.lost link) /. 1000.0 in
  check Alcotest.bool "loss near 0.5" true (rate > 0.44 && rate < 0.56)

let test_net_down () =
  let e = Sim.Engine.create () in
  let delivered = ref 0 in
  let link =
    Sim.Net.create e ~delay_lo:0.0 ~delay_hi:0.0
      ~deliver:(fun () -> incr delivered)
      ()
  in
  Sim.Net.set_up link false;
  Sim.Net.send link ();
  Sim.Engine.run e;
  (* Down-link drops are accounted separately from stochastic loss. *)
  check Alcotest.int "dropped" 1 (Sim.Net.dropped link);
  check Alcotest.int "not counted as loss" 0 (Sim.Net.lost link);
  check Alcotest.int "nothing delivered" 0 !delivered

let test_net_partition_vs_loss_accounting () =
  let e = Sim.Engine.create ~seed:11L () in
  let link =
    Sim.Net.create e ~loss:0.5 ~delay_lo:0.0 ~delay_hi:0.1 ~deliver:ignore ()
  in
  for _ = 1 to 200 do
    Sim.Net.send link ()
  done;
  Sim.Net.set_up link false;
  for _ = 1 to 100 do
    Sim.Net.send link ()
  done;
  Sim.Engine.run e;
  check Alcotest.int "down sends all dropped" 100 (Sim.Net.dropped link);
  check Alcotest.int "loss only from the up phase" 200
    (Sim.Net.delivered link + Sim.Net.lost link);
  let rate = float_of_int (Sim.Net.lost link) /. 200.0 in
  check Alcotest.bool "loss rate unpolluted by the partition" true
    (rate > 0.38 && rate < 0.62)

let test_net_flush_inflight () =
  let e = Sim.Engine.create ~seed:3L () in
  let delivered = ref 0 in
  let drops = ref [] in
  let link =
    Sim.Net.create e
      ~on_drop:(fun kind () -> drops := kind :: !drops)
      ~delay_lo:1.0 ~delay_hi:1.0
      ~deliver:(fun () -> incr delivered)
      ()
  in
  Sim.Net.send link ();
  Sim.Net.send link ();
  Sim.Net.flush_in_flight link;
  Sim.Net.send link ();
  Sim.Engine.run e;
  check Alcotest.int "flushed" 2 (Sim.Net.dropped link);
  check Alcotest.int "later send unaffected" 1 !delivered;
  check Alcotest.bool "flushes reported as Down drops" true
    (!drops = [ Sim.Net.Down; Sim.Net.Down ])

let test_net_duplicate () =
  let e = Sim.Engine.create ~seed:5L () in
  let delivered = ref 0 in
  let link =
    Sim.Net.create e ~delay_lo:0.0 ~delay_hi:1.0
      ~deliver:(fun () -> incr delivered)
      ()
  in
  Sim.Net.set_duplicate link 1.0;
  for _ = 1 to 50 do
    Sim.Net.send link ()
  done;
  Sim.Engine.run e;
  check Alcotest.int "every message doubled" 100 !delivered;
  check Alcotest.int "duplicates counted" 50 (Sim.Net.duplicates link);
  check Alcotest.int "delivered counts copies" 100 (Sim.Net.delivered link)

let test_net_burst_window () =
  let e = Sim.Engine.create ~seed:6L () in
  let link =
    Sim.Net.create e ~delay_lo:0.0 ~delay_hi:0.1 ~deliver:ignore ()
  in
  Sim.Net.set_burst link (Some 1.0);
  for _ = 1 to 30 do
    Sim.Net.send link ()
  done;
  Sim.Net.set_burst link None;
  for _ = 1 to 30 do
    Sim.Net.send link ()
  done;
  Sim.Engine.run e;
  check Alcotest.int "burst swallows everything, as loss" 30
    (Sim.Net.lost link);
  check Alcotest.int "after the window the link is clean" 30
    (Sim.Net.delivered link)

let test_net_jitter_is_late () =
  let e = Sim.Engine.create ~seed:7L () in
  let late_cb = ref 0 in
  let last_delivery = ref 0.0 in
  let link =
    Sim.Net.create e
      ~on_late:(fun () -> incr late_cb)
      ~delay_lo:1.0 ~delay_hi:1.0
      ~deliver:(fun () -> last_delivery := Sim.Engine.now e)
      ()
  in
  Sim.Net.set_jitter link 1.0;
  Sim.Net.send link ();
  Sim.Engine.run e;
  check Alcotest.int "late delivery flagged" 1 (Sim.Net.late link);
  check Alcotest.int "on_late called" 1 !late_cb;
  check Alcotest.bool "delay beyond the nominal bound" true
    (!last_delivery > 1.0 && !last_delivery <= 2.0)

let test_net_reorder_overtakes () =
  let e = Sim.Engine.create ~seed:9L () in
  let order = ref [] in
  let link =
    Sim.Net.create e ~delay_lo:0.4 ~delay_hi:0.5
      ~deliver:(fun i -> order := i :: !order)
      ()
  in
  (* First message held back past the window, second sent normally just
     after: the second must overtake the first. *)
  Sim.Net.set_reorder link 1.0;
  Sim.Net.send link 1;
  Sim.Net.set_reorder link 0.0;
  ignore
    (Sim.Engine.schedule e ~delay:0.01 (fun () -> Sim.Net.send link 2));
  Sim.Engine.run e;
  check Alcotest.(list int) "second overtakes first" [ 1; 2 ] !order;
  check Alcotest.int "held message counted late" 1 (Sim.Net.late link)

let test_engine_max_events_budget () =
  let e = Sim.Engine.create () in
  for i = 1 to 5 do
    ignore (Sim.Engine.schedule e ~delay:(float_of_int i) ignore)
  done;
  Sim.Engine.run ~max_events:2 e;
  check Alcotest.int "first call stops at its budget" 2
    (Sim.Engine.events_executed e);
  (* The budget must be per invocation: a second call with the same
     budget makes progress instead of stopping immediately against the
     global counter. *)
  Sim.Engine.run ~max_events:2 e;
  check Alcotest.int "second call gets a fresh budget" 4
    (Sim.Engine.events_executed e);
  Sim.Engine.run e;
  check Alcotest.int "drained" 5 (Sim.Engine.events_executed e)

let test_net_bad_args () =
  let e = Sim.Engine.create () in
  Alcotest.check_raises "bad delays" (Invalid_argument "Sim.Net.create: bad delay range")
    (fun () ->
      ignore (Sim.Net.create e ~delay_lo:2.0 ~delay_hi:1.0 ~deliver:ignore ()));
  Alcotest.check_raises "bad loss" (Invalid_argument "Sim.Net.create: bad loss rate")
    (fun () ->
      ignore
        (Sim.Net.create e ~loss:1.5 ~delay_lo:0.0 ~delay_hi:1.0 ~deliver:ignore ()))

let tests =
  ( "sim",
    [
      Alcotest.test_case "heap basics" `Quick test_heap_basic;
      Alcotest.test_case "heap empty cases" `Quick test_heap_empty;
      QCheck_alcotest.to_alcotest prop_heap_sorts;
      QCheck_alcotest.to_alcotest prop_heap_size;
      Alcotest.test_case "rng deterministic per seed" `Quick test_rng_deterministic;
      Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
      Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
      Alcotest.test_case "rng bernoulli bias" `Quick test_rng_bool_bias;
      Alcotest.test_case "stats moments" `Quick test_stats_moments;
      Alcotest.test_case "stats empty" `Quick test_stats_empty;
      Alcotest.test_case "percentile" `Quick test_percentile;
      Alcotest.test_case "histogram" `Quick test_histogram;
      Alcotest.test_case "loss model validation" `Quick test_loss_validate;
      Alcotest.test_case "loss expected rate" `Quick test_loss_expected;
      QCheck_alcotest.to_alcotest prop_loss_expected_matches_empirical;
      Alcotest.test_case "loss empirical rate" `Quick test_loss_empirical_rate;
      Alcotest.test_case "gilbert losses are bursty" `Quick test_loss_burstiness;
      Alcotest.test_case "engine executes in time order" `Quick test_engine_ordering;
      Alcotest.test_case "engine cancel" `Quick test_engine_cancel;
      Alcotest.test_case "engine until" `Quick test_engine_until;
      Alcotest.test_case "engine nested scheduling" `Quick
        test_engine_nested_scheduling;
      Alcotest.test_case "engine argument errors" `Quick test_engine_errors;
      Alcotest.test_case "engine max_events budget is per invocation" `Quick
        test_engine_max_events_budget;
      Alcotest.test_case "net delivers within window" `Quick
        test_net_delivers_in_window;
      Alcotest.test_case "net loss accounting" `Quick test_net_loss_accounting;
      Alcotest.test_case "net down drops silently" `Quick test_net_down;
      Alcotest.test_case "net partition drops are not loss" `Quick
        test_net_partition_vs_loss_accounting;
      Alcotest.test_case "net in-flight flush" `Quick test_net_flush_inflight;
      Alcotest.test_case "net duplication" `Quick test_net_duplicate;
      Alcotest.test_case "net burst-loss window" `Quick test_net_burst_window;
      Alcotest.test_case "net jitter flags late delivery" `Quick
        test_net_jitter_is_late;
      Alcotest.test_case "net reordering overtakes" `Quick
        test_net_reorder_overtakes;
      Alcotest.test_case "net argument errors" `Quick test_net_bad_args;
    ] )
