(* Units and soundness checks for the state-compression layer (Mc.Store):
   exact-store roundtrips, CLI-spelling parses, forced fingerprint
   collisions (conflation under-reports, never over-reports, never
   crashes), and the bitstate coverage estimate against the true
   omission rate on an enumerable model. *)

let check = Alcotest.check

module S = Mc.Store.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

(* ------------------------------------------------------------------ *)
(* CLI spellings                                                       *)
(* ------------------------------------------------------------------ *)

let test_of_string () =
  let ok s m =
    match Mc.Store.of_string s with
    | Ok m' -> check Alcotest.bool (s ^ " parses") true (m = m')
    | Error e -> Alcotest.failf "%s rejected: %s" s e
  in
  let err s =
    match Mc.Store.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should be rejected" s
  in
  ok "exact" Mc.Store.Exact;
  ok " Exact " Mc.Store.Exact;
  ok "hashcompact" (Mc.Store.Hash_compaction { bits = 62 });
  ok "hashcompact:8" (Mc.Store.Hash_compaction { bits = 8 });
  ok "hashcompact:999" (Mc.Store.Hash_compaction { bits = 62 });
  ok "bitstate" (Mc.Store.Bitstate { log2_bits = 25; hashes = 3 });
  ok "bitstate:12" (Mc.Store.Bitstate { log2_bits = 12; hashes = 3 });
  ok "bitstate:12:5" (Mc.Store.Bitstate { log2_bits = 12; hashes = 5 });
  ok "bitstate:5" (Mc.Store.Bitstate { log2_bits = 10; hashes = 3 });
  ok "bitstate:12:99" (Mc.Store.Bitstate { log2_bits = 12; hashes = 8 });
  err "hashcompact:x";
  err "hashcompact:0";
  err "bitstate:0";
  err "supertrace";
  err ""

(* ------------------------------------------------------------------ *)
(* Exact-store roundtrip                                               *)
(* ------------------------------------------------------------------ *)

let test_exact_roundtrip () =
  let t = S.create ~shards:8 Mc.Store.Exact in
  check Alcotest.bool "tracks pids" true (S.tracks_pids t);
  for i = 0 to 99 do
    match S.intern t i ~depth:i with
    | S.Fresh pid -> check Alcotest.int "dense insertion-order pid" i pid
    | _ -> Alcotest.failf "state %d should be Fresh" i
  done;
  check Alcotest.int "total" 100 (S.total t);
  (match S.intern t 7 ~depth:50 with
  | S.Known pid -> check Alcotest.int "re-intern keeps its pid" 7 pid
  | _ -> Alcotest.fail "worse depth must be Known");
  (match S.intern t 7 ~depth:2 with
  | S.Relaxed (pid, old) ->
      check Alcotest.int "relaxed pid" 7 pid;
      check Alcotest.int "previous depth reported" 7 old
  | _ -> Alcotest.fail "better depth must be Relaxed");
  check Alcotest.int "find_pid known" 7 (S.find_pid t 7);
  check Alcotest.int "find_pid unknown" (-1) (S.find_pid t 100);
  check Alcotest.int "total unchanged by re-interns" 100 (S.total t);
  check Alcotest.int "occupancy sums to total" 100
    (Array.fold_left ( + ) 0 (S.occupancy t));
  let c = S.coverage t in
  check Alcotest.bool "exact coverage is certain" true
    (c.Mc.Store.exact
    && c.Mc.Store.omission_prob = 0.
    && c.Mc.Store.est_coverage = 1.)

(* ------------------------------------------------------------------ *)
(* Forced fingerprint collisions                                       *)
(* ------------------------------------------------------------------ *)

let test_forced_collision_conflates () =
  (* every state hashes to the same fingerprint: the store must conflate
     them onto one pid (pure under-report), never mint a second id and
     never crash *)
  let t =
    S.create ~shards:4 ~fingerprint:(fun _ -> 0x1234) Mc.Store.hash_compaction
  in
  (match S.intern t 1 ~depth:3 with
  | S.Fresh 0 -> ()
  | _ -> Alcotest.fail "first state must be Fresh 0");
  (match S.intern t 2 ~depth:5 with
  | S.Known 0 -> ()
  | _ -> Alcotest.fail "colliding state must conflate to pid 0, not relax");
  (match S.intern t 3 ~depth:1 with
  | S.Relaxed (0, 3) -> ()
  | _ -> Alcotest.fail "shallower colliding state must relax pid 0's stamp");
  check Alcotest.int "conflation under-reports total" 1 (S.total t);
  check Alcotest.int "colliding lookup resolves to the one pid" 0
    (S.find_pid t 2)

let test_forced_collision_bitstate () =
  let t =
    S.create ~shards:4
      ~fingerprint:(fun _ -> 0x1234)
      (Mc.Store.Bitstate { log2_bits = 10; hashes = 3 })
  in
  check Alcotest.bool "bitstate tracks no pids" false (S.tracks_pids t);
  (match S.intern t 1 ~depth:0 with
  | S.Fresh 0 -> ()
  | _ -> Alcotest.fail "first state must be Fresh 0");
  (match S.intern t 2 ~depth:0 with
  | S.Known -1 -> ()
  | _ -> Alcotest.fail "colliding state must read as already seen");
  check Alcotest.int "one state stored" 1 (S.total t);
  check Alcotest.int "no pid lookups" (-1) (S.find_pid t 1)

let test_bitstate_distinct_fresh () =
  let t = S.create ~shards:4 (Mc.Store.Bitstate { log2_bits = 20; hashes = 3 }) in
  for i = 0 to 199 do
    match S.intern t i ~depth:0 with
    | S.Fresh pid -> check Alcotest.int "dense pid" i pid
    | _ -> Alcotest.failf "state %d unexpectedly collided in a 1 Mbit array" i
  done;
  (match S.intern t 42 ~depth:0 with
  | S.Known -1 -> ()
  | _ -> Alcotest.fail "re-intern must be Known");
  check Alcotest.int "total" 200 (S.total t)

(* ------------------------------------------------------------------ *)
(* Engine-level collision behaviour                                    *)
(* ------------------------------------------------------------------ *)

let test_narrow_compact_underreports () =
  (* 8-bit fingerprints give 256 slots for a 1000-state chain: collisions
     are certain.  The run must finish, report complete, and only ever
     under-count. *)
  let n = 1000 in
  let sys = Test_pexplore.counter n in
  List.iter
    (fun d ->
      let count, complete =
        Mc.Pexplore.count ~domains:d
          ~store:(Mc.Store.Hash_compaction { bits = 8 })
          sys
      in
      check Alcotest.bool
        (Printf.sprintf "completes without crashing (d=%d)" d)
        true complete;
      check Alcotest.bool
        (Printf.sprintf "never over-reports (d=%d)" d)
        true (count <= n);
      check Alcotest.bool
        (Printf.sprintf "256 fingerprints force under-report (d=%d)" d)
        true
        (count < n))
    [ 1; 4 ]

let test_compact_find_never_fabricates () =
  (* the chain's last state is hidden behind a collision: find answers
     Unreachable (a probabilistic miss) — it must never invent a witness
     for a state it did not visit *)
  let n = 1000 in
  let sys = Test_pexplore.counter n in
  match
    Mc.Pexplore.find ~domains:2
      ~store:(Mc.Store.Hash_compaction { bits = 8 })
      ~goal:(fun s -> s = n - 1)
      sys
  with
  | Mc.Explore.Unreachable -> ()
  | Mc.Explore.Reached _ ->
      Alcotest.fail "fabricated a witness beyond the collision cut"
  | Mc.Explore.Bound_hit _ -> Alcotest.fail "unexpected bound"
  | Mc.Explore.Exhausted _ -> Alcotest.fail "unexpected exhaustion"

let prop_compressed_never_overreport =
  QCheck.Test.make ~name:"compressed stores never over-report" ~count:100
    QCheck.(pair Test_pexplore.rand_sys_arb (int_range 1 16))
    (fun (rs, bits) ->
      let sys = Test_pexplore.table_system rs in
      let exact, _ = Mc.Pexplore.count ~domains:2 sys in
      let compact, _ =
        Mc.Pexplore.count ~domains:2
          ~store:(Mc.Store.Hash_compaction { bits })
          sys
      in
      let bit, _ =
        Mc.Pexplore.count ~domains:2
          ~store:(Mc.Store.Bitstate { log2_bits = 10; hashes = 2 })
          sys
      in
      compact <= exact && bit <= exact && compact >= 1 && bit >= 1)

let test_fullwidth_compact_exact_parity () =
  (* at the default 62-bit width a collision on a few thousand states has
     probability ~1e-12: the count matches the exact store *)
  let sys = Test_pexplore.counter 5000 in
  let exact, _ = Mc.Pexplore.count sys in
  List.iter
    (fun d ->
      let compact, complete =
        Mc.Pexplore.count ~domains:d ~store:Mc.Store.hash_compaction sys
      in
      check Alcotest.bool "complete" true complete;
      check Alcotest.int
        (Printf.sprintf "62-bit fingerprints count exactly (d=%d)" d)
        exact compact)
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Bitstate coverage estimate vs. ground truth                          *)
(* ------------------------------------------------------------------ *)

(* A dense DAG over 0..n-1 (six well-spread forward edges per state):
   nearly every state has six predecessors, so an omitted state almost
   never disconnects downstream states and the measured omissions are
   the direct bitstate false positives — the regime the store's
   independent-omission estimate models (a bare chain would cascade and
   defeat any estimator). *)
let dag n : (int, string) Mc.System.t =
  (module struct
    type state = int
    type label = string

    let initial = 0

    let successors s =
      List.filter_map
        (fun d ->
          if s + d < n then Some (string_of_int d, s + d) else None)
        [ 1; 3; 7; 13; 29; 53 ]

    let equal_state = Int.equal
    let hash_state = Hashtbl.hash
    let pp_state = Format.pp_print_int
    let pp_label = Format.pp_print_string
  end)

let test_bitstate_coverage_estimate () =
  let n = 2000 in
  let (count, complete), stats =
    Mc.Pexplore.count_stats ~domains:1
      ~store:(Mc.Store.Bitstate { log2_bits = 12; hashes = 2 })
      (dag n)
  in
  check Alcotest.bool "run completes" true complete;
  check Alcotest.bool "never over-reports" true (count <= n);
  check Alcotest.bool "a saturated 4 Kbit array forces omissions" true
    (count < n);
  let c = stats.Mc.Pexplore.coverage in
  check Alcotest.bool "coverage is flagged probabilistic" false
    c.Mc.Store.exact;
  check Alcotest.int "coverage counts the stored states" count
    c.Mc.Store.stored;
  check Alcotest.bool "omission probability is substantial" true
    (c.Mc.Store.omission_prob > 0.05 && c.Mc.Store.omission_prob < 1.);
  (* ground truth: the DAG has exactly n reachable states *)
  let true_coverage = float_of_int count /. float_of_int n in
  check Alcotest.bool
    (Printf.sprintf "estimate %.3f within 0.1 of true coverage %.3f"
       c.Mc.Store.est_coverage true_coverage)
    true
    (Float.abs (c.Mc.Store.est_coverage -. true_coverage) <= 0.1)

let test_bitstate_ample_array_full_coverage () =
  (* with a comfortably sized array the estimate reports near-certain
     coverage and the count is exact *)
  let n = 2000 in
  let (count, complete), stats =
    Mc.Pexplore.count_stats ~domains:2
      ~store:(Mc.Store.Bitstate { log2_bits = 24; hashes = 3 })
      (dag n)
  in
  check Alcotest.bool "complete" true complete;
  check Alcotest.int "16 Mbit array stores every state" n count;
  let c = stats.Mc.Pexplore.coverage in
  check Alcotest.bool "near-certain estimated coverage" true
    (c.Mc.Store.est_coverage > 0.999);
  check Alcotest.bool "hash factor is reported" true
    (c.Mc.Store.hash_factor > 1000.)

let tests =
  ( "store",
    [
      Alcotest.test_case "of_string spellings" `Quick test_of_string;
      Alcotest.test_case "exact roundtrip" `Quick test_exact_roundtrip;
      Alcotest.test_case "forced collision conflates (hashcompact)" `Quick
        test_forced_collision_conflates;
      Alcotest.test_case "forced collision conflates (bitstate)" `Quick
        test_forced_collision_bitstate;
      Alcotest.test_case "bitstate distinct states are fresh" `Quick
        test_bitstate_distinct_fresh;
      Alcotest.test_case "narrow fingerprints under-report" `Quick
        test_narrow_compact_underreports;
      Alcotest.test_case "find never fabricates witnesses" `Quick
        test_compact_find_never_fabricates;
      Alcotest.test_case "full-width fingerprints count exactly" `Quick
        test_fullwidth_compact_exact_parity;
      Alcotest.test_case "bitstate coverage estimate vs ground truth" `Quick
        test_bitstate_coverage_estimate;
      Alcotest.test_case "bitstate ample array reaches full coverage" `Quick
        test_bitstate_ample_array_full_coverage;
      QCheck_alcotest.to_alcotest prop_compressed_never_overreport;
    ] )
