(* Resilience harness for budgets, suspension/resume, checkpoint
   container integrity, in-place store degradation and the quarantine of
   raising successor functions.

   The deterministic lever everywhere is [Budget.make ~probe
   ~check_every:1]: the probe fires on every poll, so a counter inside
   it trips the budget after an exact number of engine polls — no
   wall-clock or heap-size flakiness in CI. *)

let check = Alcotest.check

(* Trip with [Cancelled] on the k-th budget poll. *)
let tripping_budget k =
  let calls = Atomic.make 0 in
  let probe () =
    if Atomic.fetch_and_add calls 1 >= k - 1 then Some Mc.Budget.Cancelled
    else None
  in
  Mc.Budget.make ~probe ~check_every:1 ()

(* Trip with [Memory] exactly [shots] times over the whole run (the
   budget re-arms after each degradation, so each shot costs one rung of
   the store ladder). *)
let memory_budget shots =
  let left = Atomic.make shots in
  let probe () =
    if Atomic.fetch_and_add left (-1) > 0 then Some (Mc.Budget.Memory 1)
    else None
  in
  Mc.Budget.make ~probe ~check_every:1 ()

let sys_of_succ (succ : int -> (string * int) list) : (int, string) Mc.System.t
    =
  (module struct
    type state = int
    type label = string

    let initial = 0
    let successors = succ
    let equal_state = Int.equal
    let hash_state = Hashtbl.hash
    let pp_state = Format.pp_print_int
    let pp_label = Format.pp_print_string
  end)

(* Numbering-independent view of a space: completeness, the state set
   and the transition multiset over concrete states — what parallel
   suspend/resume round trips guarantee (only seq->seq round trips
   promise byte-identity, which [Test_pexplore.same_space] checks). *)
let sorted_view (sp : (int, string) Mc.Explore.space) =
  let tr =
    List.map
      (fun (s, l, t) ->
        (sp.Mc.Explore.states.(s), l, sp.Mc.Explore.states.(t)))
      (Lts.Graph.transitions sp.Mc.Explore.lts)
  in
  ( sp.Mc.Explore.complete,
    List.sort compare (Array.to_list sp.Mc.Explore.states),
    List.sort compare tr )

(* ------------------------------------------------------------------ *)
(* Sequential suspend/resume: byte-identical to an uninterrupted run.   *)
(* ------------------------------------------------------------------ *)

let prop_seq_resume_byte_identical =
  QCheck.Test.make
    ~name:"seq suspend/resume byte-identical to uninterrupted run" ~count:200
    QCheck.(pair Test_pexplore.rand_sys_arb small_nat)
    (fun (rs, k) ->
      let sys = Test_pexplore.table_system rs in
      let oracle = Mc.Explore.space sys in
      let budget = tripping_budget (1 + (k mod (rs.n + 2))) in
      match Mc.Explore.space_run ~budget sys with
      | Mc.Explore.Done sp -> Test_pexplore.same_space oracle sp
      | Mc.Explore.Suspended (_, cur) -> (
          match Mc.Explore.space_run ~resume:cur sys with
          | Mc.Explore.Done sp -> Test_pexplore.same_space oracle sp
          | Mc.Explore.Suspended _ -> false))

let prop_seq_resume_bounded =
  QCheck.Test.make
    ~name:"seq suspend/resume under max_states keeps truncation contract"
    ~count:200
    QCheck.(triple Test_pexplore.rand_sys_arb small_nat small_nat)
    (fun (rs, m, k) ->
      let sys = Test_pexplore.table_system rs in
      let max_states = m mod (rs.n + 3) in
      let oracle = Mc.Explore.space ~max_states sys in
      let budget = tripping_budget (1 + (k mod (rs.n + 2))) in
      match Mc.Explore.space_run ~max_states ~budget sys with
      | Mc.Explore.Done sp -> Test_pexplore.same_space oracle sp
      | Mc.Explore.Suspended (_, cur) -> (
          match Mc.Explore.space_run ~max_states ~resume:cur sys with
          | Mc.Explore.Done sp -> Test_pexplore.same_space oracle sp
          | Mc.Explore.Suspended _ -> false))

(* Two interrupts in a row, resumed each time, still land on the exact
   sequential result. *)
let test_seq_double_interrupt () =
  let sys = Test_pexplore.counter 300 in
  let oracle = Mc.Explore.space sys in
  let rec drain budgets r =
    match (r, budgets) with
    | Mc.Explore.Done sp, _ -> sp
    | Mc.Explore.Suspended (_, cur), b :: rest ->
        drain rest (Mc.Explore.space_run ?budget:b ~resume:cur sys)
    | Mc.Explore.Suspended _, [] ->
        Alcotest.fail "suspended again with no budget"
  in
  let first = Mc.Explore.space_run ~budget:(tripping_budget 50) sys in
  (match first with
  | Mc.Explore.Suspended _ -> ()
  | Mc.Explore.Done _ -> Alcotest.fail "expected the first run to suspend");
  let sp = drain [ Some (tripping_budget 100); None ] first in
  check Alcotest.bool "double interrupt/resume = uninterrupted" true
    (Test_pexplore.same_space oracle sp)

(* Periodic checkpoints: callbacks fire at the configured granularity
   and resuming from the last snapshot of a *completed* run still
   reproduces the full space. *)
let test_periodic_checkpoint () =
  let sys = Test_pexplore.counter 200 in
  let calls = ref 0 in
  let last = ref None in
  match
    Mc.Explore.space_run
      ~checkpoint:
        ( 50,
          fun c ->
            incr calls;
            last := Some c )
      sys
  with
  | Mc.Explore.Suspended _ -> Alcotest.fail "unexpected suspension"
  | Mc.Explore.Done sp -> (
      check Alcotest.bool "periodic checkpoints fired" true (!calls >= 3);
      match !last with
      | None -> Alcotest.fail "no checkpoint captured"
      | Some cur -> (
          match Mc.Explore.space_run ~resume:cur sys with
          | Mc.Explore.Done sp' ->
              check Alcotest.bool "resume from periodic snapshot" true
                (Test_pexplore.same_space sp sp')
          | Mc.Explore.Suspended _ -> Alcotest.fail "resume suspended"))

(* Resuming with a different max_states than the cursor was taken with
   is a parameter mismatch, not a silent wrong answer. *)
let test_resume_max_states_mismatch () =
  let sys = Test_pexplore.counter 100 in
  match Mc.Explore.space_run ~max_states:80 ~budget:(tripping_budget 10) sys with
  | Mc.Explore.Done _ -> Alcotest.fail "expected suspension"
  | Mc.Explore.Suspended (_, cur) ->
      (try
         ignore (Mc.Explore.space_run ~max_states:60 ~resume:cur sys);
         Alcotest.fail "sequential resume accepted a max_states mismatch"
       with Invalid_argument _ -> ());
      (try
         ignore
           (Mc.Pexplore.space_run ~max_states:60 ~domains:2 ~resume:cur sys);
         Alcotest.fail "parallel resume accepted a max_states mismatch"
       with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Checkpoint files: round trip, kind guard, corruption, truncation.    *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_container () =
  let sys = Test_pexplore.counter 200 in
  let kind = "test/resilience/counter200" in
  match Mc.Explore.space_run ~budget:(tripping_budget 60) sys with
  | Mc.Explore.Done _ -> Alcotest.fail "expected suspension"
  | Mc.Explore.Suspended (_, cur) ->
      let file = Filename.temp_file "hbckpt" ".ck" in
      Fun.protect ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
      @@ fun () ->
      Mc.Checkpoint.save ~file ~kind cur;
      (match Mc.Checkpoint.load ~file ~kind with
      | Error e -> Alcotest.failf "load of a fresh checkpoint failed: %s" e
      | Ok (cur' : (int, string) Mc.Explore.cursor) -> (
          match Mc.Explore.space_run ~resume:cur' sys with
          | Mc.Explore.Done sp ->
              check Alcotest.bool "resume through the file = uninterrupted"
                true
                (Test_pexplore.same_space (Mc.Explore.space sys) sp)
          | Mc.Explore.Suspended _ -> Alcotest.fail "file resume suspended"));
      (match Mc.Checkpoint.load ~file ~kind:"test/resilience/other" with
      | Error _ -> ()
      | Ok (_ : (int, string) Mc.Explore.cursor) ->
          Alcotest.fail "kind mismatch was accepted");
      let bytes =
        let ic = open_in_bin file in
        Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
        really_input_string ic (in_channel_length ic)
      in
      let rewrite s =
        let oc = open_out_bin file in
        output_string oc s;
        close_out oc
      in
      let flipped = Bytes.of_string bytes in
      let last = Bytes.length flipped - 1 in
      Bytes.set flipped last
        (Char.chr (Char.code (Bytes.get flipped last) lxor 0xff));
      rewrite (Bytes.to_string flipped);
      (match Mc.Checkpoint.load ~file ~kind with
      | Error _ -> ()
      | Ok (_ : (int, string) Mc.Explore.cursor) ->
          Alcotest.fail "corrupted payload was accepted");
      rewrite (String.sub bytes 0 (String.length bytes / 2));
      (match Mc.Checkpoint.load ~file ~kind with
      | Error _ -> ()
      | Ok (_ : (int, string) Mc.Explore.cursor) ->
          Alcotest.fail "truncated file was accepted")

(* ------------------------------------------------------------------ *)
(* Parallel suspend/resume: verdict- and set-identical, all stores.     *)
(* ------------------------------------------------------------------ *)

let prop_par_resume_verdict_identical =
  QCheck.Test.make
    ~name:"par suspend/resume set-identical (stores x domains {2,4})"
    ~count:40
    QCheck.(pair Test_pexplore.rand_sys_arb small_nat)
    (fun (rs, k) ->
      let sys = Test_pexplore.table_system rs in
      let view = sorted_view (Mc.Explore.space sys) in
      List.for_all
        (fun store ->
          List.for_all
            (fun d ->
              let budget = tripping_budget (1 + (k mod (rs.n + 2))) in
              match Mc.Pexplore.space_run ~domains:d ~store ~budget sys with
              | Mc.Explore.Done sp, _ -> sorted_view sp = view
              | Mc.Explore.Suspended (_, cur), _ -> (
                  match
                    Mc.Pexplore.space_run ~domains:d ~store ~resume:cur sys
                  with
                  | Mc.Explore.Done sp, _ -> sorted_view sp = view
                  | Mc.Explore.Suspended _, _ -> false))
            [ 2; 4 ])
        Test_pexplore.pid_stores)

let prop_par_resume_bounded =
  QCheck.Test.make
    ~name:"par suspend/resume under max_states matches seq truncation"
    ~count:60
    QCheck.(triple Test_pexplore.rand_sys_arb small_nat small_nat)
    (fun (rs, m, k) ->
      let sys = Test_pexplore.table_system rs in
      let max_states = m mod (rs.n + 3) in
      let view = sorted_view (Mc.Explore.space ~max_states sys) in
      let budget = tripping_budget (1 + (k mod (rs.n + 2))) in
      match Mc.Pexplore.space_run ~max_states ~domains:2 ~budget sys with
      | Mc.Explore.Done sp, _ -> sorted_view sp = view
      | Mc.Explore.Suspended (_, cur), _ -> (
          match Mc.Pexplore.space_run ~max_states ~domains:2 ~resume:cur sys with
          | Mc.Explore.Done sp, _ -> sorted_view sp = view
          | Mc.Explore.Suspended _, _ -> false))

(* ------------------------------------------------------------------ *)
(* Degradation ladder: memory trips walk the store down in place.       *)
(* ------------------------------------------------------------------ *)

let test_degradation_one_rung () =
  let sys = Test_pexplore.counter 3000 in
  let (count, complete), stats =
    Mc.Pexplore.count_stats ~domains:2 ~budget:(memory_budget 1) sys
  in
  check Alcotest.int "count survives the rung" 3000 count;
  check Alcotest.bool "run completes" true complete;
  check
    Alcotest.(list string)
    "exactly one rung taken" [ "hashcompact" ] stats.Mc.Pexplore.degraded;
  check Alcotest.bool "no exhaustion after degradation" true
    (stats.Mc.Pexplore.exhausted = None)

let test_degradation_full_ladder () =
  let sys = Test_pexplore.counter 3000 in
  let (count, complete), stats =
    Mc.Pexplore.count_stats ~domains:2 ~budget:(memory_budget 2) sys
  in
  check
    Alcotest.(list string)
    "both rungs taken in order"
    [ "hashcompact"; "bitstate" ]
    stats.Mc.Pexplore.degraded;
  check Alcotest.bool "no exhaustion at the bottom of the ladder" true
    (stats.Mc.Pexplore.exhausted = None);
  check Alcotest.bool "run completes (probabilistically)" true complete;
  (* bitstate can only under-count, and on 3000 states over 2^25 bits
     the expected omission is far below one state *)
  check Alcotest.bool "count within bitstate omission bounds" true
    (count <= 3000 && count > 2900);
  check Alcotest.bool "coverage reflects the final mode" true
    (stats.Mc.Pexplore.coverage.Mc.Store.mode = "bitstate")

let test_degradation_disabled_exhausts () =
  let sys = Test_pexplore.counter 3000 in
  let (count, complete), stats =
    Mc.Pexplore.count_stats ~domains:2 ~budget:(memory_budget 1)
      ~degrade:false sys
  in
  (match stats.Mc.Pexplore.exhausted with
  | Some (Mc.Budget.Memory _) -> ()
  | _ -> Alcotest.fail "expected a sticky memory exhaustion");
  check Alcotest.bool "partial count" true (count < 3000);
  check Alcotest.bool "incomplete" false complete

(* ------------------------------------------------------------------ *)
(* Quarantine: raising successors are retried, then surfaced.           *)
(* ------------------------------------------------------------------ *)

(* A complete binary tree on 0..126; plenty of parallel work around the
   poisoned state. *)
let tree_succ s =
  let l = (2 * s) + 1 and r = (2 * s) + 2 in
  if r <= 126 then [ ("l", l); ("r", r) ] else []

let test_transient_raise_retried () =
  let raised = Atomic.make false in
  let succ s =
    if s = 60 && not (Atomic.exchange raised true) then
      failwith "transient successor failure"
    else tree_succ s
  in
  let (count, complete), stats =
    Mc.Pexplore.count_stats ~domains:4 (sys_of_succ succ)
  in
  check Alcotest.int "all 127 states counted after the retry" 127 count;
  check Alcotest.bool "complete" true complete;
  check Alcotest.bool "the retry was recorded" true
    (stats.Mc.Pexplore.retries >= 1);
  check Alcotest.bool "no exhaustion" true
    (stats.Mc.Pexplore.exhausted = None)

(* The satellite pin: a successor that keeps raising must not deadlock
   the 4-domain run — it terminates with Exhausted (Crashed _) naming
   the state, after exploring everything else. *)
let test_persistent_raise_terminates () =
  let succ s = if s = 60 then failwith "boom" else tree_succ s in
  match
    Mc.Pexplore.find ~domains:4 ~goal:(fun s -> s = 9999) (sys_of_succ succ)
  with
  | Mc.Explore.Exhausted e ->
      (match e.Mc.Explore.reason with
      | Mc.Budget.Crashed _ -> ()
      | r ->
          Alcotest.failf "expected Crashed, got %s" (Mc.Budget.reason_name r));
      check Alcotest.bool "the rest of the space was still explored" true
        (e.Mc.Explore.states_so_far >= 120)
  | _ -> Alcotest.fail "expected Exhausted (Crashed _)"

(* ------------------------------------------------------------------ *)
(* Budget semantics and verdict surfacing.                              *)
(* ------------------------------------------------------------------ *)

let test_budget_semantics () =
  let b = Mc.Budget.make ~check_every:1 () in
  check Alcotest.bool "untripped" true (Mc.Budget.check b = None);
  Mc.Budget.trip b (Mc.Budget.Memory 7);
  (match Mc.Budget.tripped b with
  | Some (Mc.Budget.Memory 7) -> ()
  | _ -> Alcotest.fail "memory trip not recorded");
  Mc.Budget.trip b Mc.Budget.Cancelled;
  (match Mc.Budget.tripped b with
  | Some (Mc.Budget.Memory 7) -> ()
  | _ -> Alcotest.fail "the first trip must win");
  Mc.Budget.rearm b;
  check Alcotest.bool "memory trips re-arm" true (Mc.Budget.tripped b = None);
  Mc.Budget.cancel b;
  (match Mc.Budget.check b with
  | Some Mc.Budget.Cancelled -> ()
  | _ -> Alcotest.fail "cancellation not observed");
  Mc.Budget.rearm b;
  match Mc.Budget.tripped b with
  | Some Mc.Budget.Cancelled -> ()
  | _ -> Alcotest.fail "cancellation must survive rearm"

let test_safety_exhausted () =
  let sys = Test_pexplore.counter 500 in
  List.iter
    (fun domains ->
      match
        Mc.Safety.check_state ~domains ~budget:(tripping_budget 1) sys
          (fun _ -> false)
      with
      | Mc.Safety.Exhausted e ->
          check Alcotest.string
            (Printf.sprintf "reason surfaced at %d domain(s)" domains)
            "interrupted"
            (Mc.Budget.reason_name e.Mc.Explore.reason)
      | _ -> Alcotest.failf "expected Exhausted at %d domain(s)" domains)
    [ 1; 2 ]

let tests =
  ( "resilience",
    [
      QCheck_alcotest.to_alcotest prop_seq_resume_byte_identical;
      QCheck_alcotest.to_alcotest prop_seq_resume_bounded;
      Alcotest.test_case "double interrupt/resume" `Quick
        test_seq_double_interrupt;
      Alcotest.test_case "periodic checkpoint callbacks" `Quick
        test_periodic_checkpoint;
      Alcotest.test_case "resume max_states mismatch rejected" `Quick
        test_resume_max_states_mismatch;
      Alcotest.test_case "checkpoint container guards" `Quick
        test_checkpoint_container;
      QCheck_alcotest.to_alcotest prop_par_resume_verdict_identical;
      QCheck_alcotest.to_alcotest prop_par_resume_bounded;
      Alcotest.test_case "degradation: one rung" `Quick
        test_degradation_one_rung;
      Alcotest.test_case "degradation: full ladder" `Quick
        test_degradation_full_ladder;
      Alcotest.test_case "degradation disabled exhausts" `Quick
        test_degradation_disabled_exhausts;
      Alcotest.test_case "transient raising successor retried" `Quick
        test_transient_raise_retried;
      Alcotest.test_case "persistent raising successor terminates" `Quick
        test_persistent_raise_terminates;
      Alcotest.test_case "budget trip/rearm semantics" `Quick
        test_budget_semantics;
      Alcotest.test_case "Safety surfaces Exhausted" `Quick
        test_safety_exhausted;
    ] )
