(* qcheck parity harness for the parallel exploration engine: on random
   finite systems and on the heartbeat models, Mc.Pexplore must agree with
   Mc.Explore — byte-for-byte on spaces, on witness length and truncation
   behaviour for goal searches — for every domain count in {1, 2, 4}. *)

let check = Alcotest.check
let domain_counts = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Random finite systems: a sparse successor table over states 0..n-1. *)
(* ------------------------------------------------------------------ *)

type rand_sys = { n : int; succ : (string * int) array array }

let table_system { succ; _ } : (int, string) Mc.System.t =
  (module struct
    type state = int
    type label = string

    let initial = 0
    let successors s = Array.to_list succ.(s)
    let equal_state = Int.equal
    let hash_state = Hashtbl.hash
    let pp_state = Format.pp_print_int
    let pp_label = Format.pp_print_string
  end)

let rand_sys_gen : rand_sys QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 1 40 >>= fun n ->
  let edge = pair (oneofl [ "a"; "b"; "c" ]) (int_bound (n - 1)) in
  array_size (return n) (array_size (int_bound 3) edge) >>= fun succ ->
  return { n; succ }

let print_rand_sys { n; succ } =
  let b = Buffer.create 128 in
  Printf.bprintf b "system with %d states:" n;
  Array.iteri
    (fun s edges ->
      Printf.bprintf b " %d->[%s]" s
        (String.concat ","
           (List.map (fun (l, t) -> l ^ string_of_int t) (Array.to_list edges))))
    succ;
  Buffer.contents b

let rand_sys_arb = QCheck.make ~print:print_rand_sys rand_sys_gen

(* Structural space equality: numbering, transition order, state array and
   completeness must all coincide. *)
let same_space (a : (int, string) Mc.Explore.space)
    (b : (int, string) Mc.Explore.space) =
  a.Mc.Explore.complete = b.Mc.Explore.complete
  && a.Mc.Explore.states = b.Mc.Explore.states
  && Lts.Graph.num_states a.Mc.Explore.lts = Lts.Graph.num_states b.Mc.Explore.lts
  && Lts.Graph.initial a.Mc.Explore.lts = Lts.Graph.initial b.Mc.Explore.lts
  && Lts.Graph.transitions a.Mc.Explore.lts
     = Lts.Graph.transitions b.Mc.Explore.lts

(* Replay a label trace on the system as a set-of-states simulation and
   test whether it can end in a goal state. *)
let trace_reaches sys_tbl ~goal trace =
  let step states l =
    List.sort_uniq compare
      (List.concat_map
         (fun s ->
           List.filter_map
             (fun (l', t) -> if String.equal l l' then Some t else None)
             (Array.to_list sys_tbl.succ.(s)))
         states)
  in
  let finals = List.fold_left step [ 0 ] trace in
  List.exists goal finals

(* Property (a): parallel and sequential full exploration agree on the
   whole space — state count, transition list (hence multiset), state
   numbering and the complete flag — for every domain count. *)
let prop_space_parity =
  QCheck.Test.make ~name:"pexplore space = explore space (d in {1,2,4})"
    ~count:150 rand_sys_arb (fun rs ->
      let sys = table_system rs in
      let seq = Mc.Explore.space sys in
      List.for_all
        (fun d -> same_space seq (Mc.Pexplore.space ~domains:d sys))
        domain_counts)

(* Property (b): goal searches agree on the verdict; witnesses have the
   sequential (shortest) length and replay to a goal state. *)
let prop_find_parity =
  QCheck.Test.make ~name:"pexplore find parity (length + replay)" ~count:150
    QCheck.(pair rand_sys_arb small_nat)
    (fun (rs, g) ->
      let sys = table_system rs in
      let goal s = s = g mod rs.n in
      let seq = Mc.Explore.find ~goal sys in
      List.for_all
        (fun d ->
          match (seq, Mc.Pexplore.find ~domains:d ~goal sys) with
          | Mc.Explore.Unreachable, Mc.Explore.Unreachable -> true
          | Mc.Explore.Reached w, Mc.Explore.Reached w' ->
              List.length w.Mc.Explore.trace
              = List.length w'.Mc.Explore.trace
              && goal w'.Mc.Explore.state
              && trace_reaches rs ~goal w'.Mc.Explore.trace
          | Mc.Explore.Bound_hit n, Mc.Explore.Bound_hit n' -> n = n'
          | _ -> false)
        domain_counts)

(* Property (c): truncation under max_states bounds behaves identically —
   same retained prefix, same induced transitions, same complete flag, and
   identical find/count verdicts at the bound. *)
let prop_bound_parity =
  QCheck.Test.make ~name:"pexplore truncation parity under max_states"
    ~count:150
    QCheck.(triple rand_sys_arb small_nat small_nat)
    (fun (rs, m, g) ->
      let sys = table_system rs in
      let max_states = m mod (rs.n + 3) in
      let goal s = s = g mod rs.n in
      let seq_space = Mc.Explore.space ~max_states sys in
      let seq_count = Mc.Explore.count ~max_states sys in
      let seq_find = Mc.Explore.find ~max_states ~goal sys in
      List.for_all
        (fun d ->
          same_space seq_space (Mc.Pexplore.space ~max_states ~domains:d sys)
          && seq_count = Mc.Pexplore.count ~max_states ~domains:d sys
          &&
          match (seq_find, Mc.Pexplore.find ~max_states ~domains:d ~goal sys) with
          | Mc.Explore.Unreachable, Mc.Explore.Unreachable -> true
          | Mc.Explore.Reached w, Mc.Explore.Reached w' ->
              List.length w.Mc.Explore.trace = List.length w'.Mc.Explore.trace
          | Mc.Explore.Bound_hit n, Mc.Explore.Bound_hit n' -> n = n'
          | _ -> false)
        domain_counts)

(* ------------------------------------------------------------------ *)
(* Reference systems: the counter and the heartbeat models.             *)
(* ------------------------------------------------------------------ *)

let counter n : (int, string) Mc.System.t =
  (module struct
    type state = int
    type label = string

    let initial = 0
    let successors s = if s = n - 1 then [ ("reset", 0) ] else [ ("inc", s + 1) ]
    let equal_state = Int.equal
    let hash_state = Hashtbl.hash
    let pp_state = Format.pp_print_int
    let pp_label = Format.pp_print_string
  end)

let test_counter_parity () =
  let sys = counter 500 in
  let seq = Mc.Explore.space sys in
  List.iter
    (fun d ->
      let par = Mc.Pexplore.space ~domains:d sys in
      check Alcotest.bool
        (Printf.sprintf "counter identical at %d domains" d)
        true
        (Marshal.to_string
           (seq.Mc.Explore.lts, seq.Mc.Explore.states, seq.Mc.Explore.complete)
           []
        = Marshal.to_string
            (par.Mc.Explore.lts, par.Mc.Explore.states, par.Mc.Explore.complete)
            []))
    domain_counts

(* Acceptance check: on the binary-heartbeat model the parallel space is
   byte-identical (via Marshal) to the sequential one for d in {1,2,4}. *)
let heartbeat_system () =
  let params = Heartbeat.Params.make ~tmin:1 ~tmax:4 () in
  let model = Heartbeat.Ta_models.build Heartbeat.Ta_models.Binary params in
  Ta.Semantics.system (Ta.Semantics.compile model)

let test_heartbeat_byte_identical () =
  let sys = heartbeat_system () in
  let seq = Mc.Explore.space sys in
  let bytes_of (s : (Ta.Semantics.config, Ta.Semantics.label) Mc.Explore.space)
      =
    Marshal.to_string (s.Mc.Explore.lts, s.Mc.Explore.states, s.Mc.Explore.complete) []
  in
  let seq_bytes = bytes_of seq in
  List.iter
    (fun d ->
      check Alcotest.bool
        (Printf.sprintf "binary heartbeat byte-identical at %d domains" d)
        true
        (String.equal seq_bytes (bytes_of (Mc.Pexplore.space ~domains:d sys))))
    domain_counts

let test_heartbeat_truncated_parity () =
  let sys = heartbeat_system () in
  List.iter
    (fun max_states ->
      let seq = Mc.Explore.space ~max_states sys in
      check Alcotest.bool "seq truncated" false seq.Mc.Explore.complete;
      List.iter
        (fun d ->
          let par = Mc.Pexplore.space ~max_states ~domains:d sys in
          check Alcotest.bool
            (Printf.sprintf "truncated space identical (bound %d, %d domains)"
               max_states d)
            true
            (Marshal.to_string
               (seq.Mc.Explore.lts, seq.Mc.Explore.states,
                seq.Mc.Explore.complete)
               []
            = Marshal.to_string
                (par.Mc.Explore.lts, par.Mc.Explore.states,
                 par.Mc.Explore.complete)
                []))
        domain_counts)
    [ 100; 777 ]

let test_heartbeat_find_parity () =
  let params = Heartbeat.Params.make ~tmin:1 ~tmax:4 () in
  let model = Heartbeat.Ta_models.build Heartbeat.Ta_models.Binary params in
  let net = Ta.Semantics.compile model in
  let sys = Ta.Semantics.system net in
  let goal = Ta.Semantics.loc_is net ~auto:"P0" ~loc:"VInact" in
  match Mc.Explore.find ~goal sys with
  | Mc.Explore.Reached w ->
      List.iter
        (fun d ->
          match Mc.Pexplore.find ~domains:d ~goal sys with
          | Mc.Explore.Reached w' ->
              check Alcotest.int
                (Printf.sprintf "witness length at %d domains" d)
                (List.length w.Mc.Explore.trace)
                (List.length w'.Mc.Explore.trace)
          | _ -> Alcotest.fail "parallel find missed a reachable goal")
        domain_counts
  | _ -> Alcotest.fail "expected P0 inactivation to be reachable"

(* ------------------------------------------------------------------ *)
(* Stores x engines: compression and the legacy level-sync engine.      *)
(* ------------------------------------------------------------------ *)

let pid_stores = [ Mc.Store.exact; Mc.Store.hash_compaction ]

(* Property (d): both engines (work-stealing and the level-synchronised
   baseline), both pid-tracking stores, every domain count: spaces are
   structurally equal to the sequential oracle (62-bit fingerprints have
   ~2^-62 collision odds per state pair, so hash compaction is exact on
   these spaces) and count/find verdicts agree. *)
let prop_store_engine_parity =
  QCheck.Test.make ~name:"stores x engines x domains parity vs Mc.Explore"
    ~count:60
    QCheck.(pair rand_sys_arb small_nat)
    (fun (rs, g) ->
      let sys = table_system rs in
      let goal s = s = g mod rs.n in
      let seq_space = Mc.Explore.space sys in
      let seq_count = Mc.Explore.count sys in
      let seq_find = Mc.Explore.find ~goal sys in
      List.for_all
        (fun workstealing ->
          List.for_all
            (fun store ->
              List.for_all
                (fun d ->
                  same_space seq_space
                    (Mc.Pexplore.space ~domains:d ~store ~workstealing sys)
                  && seq_count
                     = Mc.Pexplore.count ~domains:d ~store ~workstealing sys
                  &&
                  match
                    ( seq_find,
                      Mc.Pexplore.find ~domains:d ~store ~workstealing ~goal
                        sys )
                  with
                  | Mc.Explore.Unreachable, Mc.Explore.Unreachable -> true
                  | Mc.Explore.Reached w, Mc.Explore.Reached w' ->
                      List.length w.Mc.Explore.trace
                      = List.length w'.Mc.Explore.trace
                      && trace_reaches rs ~goal w'.Mc.Explore.trace
                  | Mc.Explore.Bound_hit n, Mc.Explore.Bound_hit n' -> n = n'
                  | _ -> false)
                domain_counts)
            pid_stores)
        [ true; false ])

(* The process-algebra protocol models under the same matrix: the spaces
   must be byte-identical to the sequential engine's (random PA specs are
   exercised by the POR suite; here the shipped variants pin the real
   state shapes — nested records, lists — through the marshalling
   fingerprint path). *)
let test_pa_store_engine_byte_identical () =
  let params = Heartbeat.Params.make ~tmin:1 ~tmax:3 () in
  List.iter
    (fun variant ->
      let spec = Heartbeat.Pa_models.build variant params in
      let sys = Proc.Semantics.system spec in
      (* No_sharing: PA states physically share subterms with whichever
         parent produced them first, which differs between engines even
         for structurally identical spaces *)
      let bytes_of (s : (_, _) Mc.Explore.space) =
        Marshal.to_string
          (s.Mc.Explore.lts, s.Mc.Explore.states, s.Mc.Explore.complete)
          [ Marshal.No_sharing ]
      in
      let seq = bytes_of (Mc.Explore.space sys) in
      List.iter
        (fun workstealing ->
          List.iter
            (fun store ->
              List.iter
                (fun d ->
                  check Alcotest.bool
                    (Printf.sprintf "%s ws=%b %s d=%d byte-identical"
                       (Heartbeat.Pa_models.variant_name variant)
                       workstealing
                       (Mc.Store.mode_name store)
                       d)
                    true
                    (String.equal seq
                       (bytes_of
                          (Mc.Pexplore.space ~domains:d ~store ~workstealing
                             sys))))
                domain_counts)
            pid_stores)
        [ true; false ])
    [ Heartbeat.Pa_models.Binary; Heartbeat.Pa_models.Static ]

let test_noreplay_same_structure () =
  (* replay:false skips canonical renumbering on completed runs: the
     numbering is free but the state set, the counts and the complete
     flag must still match the sequential engine *)
  let sys = heartbeat_system () in
  let seq = Mc.Explore.space sys in
  let seq_set = List.sort compare (Array.to_list seq.Mc.Explore.states) in
  List.iter
    (fun d ->
      let par = Mc.Pexplore.space ~replay:false ~domains:d sys in
      check Alcotest.bool
        (Printf.sprintf "complete at %d domains" d)
        true par.Mc.Explore.complete;
      check Alcotest.int
        (Printf.sprintf "state count at %d domains" d)
        (Lts.Graph.num_states seq.Mc.Explore.lts)
        (Lts.Graph.num_states par.Mc.Explore.lts);
      check Alcotest.int
        (Printf.sprintf "transition count at %d domains" d)
        (Lts.Graph.num_transitions seq.Mc.Explore.lts)
        (Lts.Graph.num_transitions par.Mc.Explore.lts);
      check Alcotest.bool
        (Printf.sprintf "same state set at %d domains" d)
        true
        (seq_set = List.sort compare (Array.to_list par.Mc.Explore.states)))
    domain_counts

let test_stats_consistency () =
  let sys = counter 500 in
  let space, stats = Mc.Pexplore.space_stats ~domains:2 sys in
  check Alcotest.int "stats states" 500 stats.Mc.Pexplore.states;
  check Alcotest.int "stats transitions"
    (Lts.Graph.num_transitions space.Mc.Explore.lts)
    stats.Mc.Pexplore.transitions;
  check Alcotest.int "histogram covers all states" 500
    (Array.fold_left ( + ) 0 stats.Mc.Pexplore.depth_histogram);
  check Alcotest.int "shards cover all states" 500
    (Array.fold_left ( + ) 0 stats.Mc.Pexplore.shard_occupancy);
  check Alcotest.int "peak frontier of a cycle" 1 stats.Mc.Pexplore.peak_frontier;
  check Alcotest.int "domains recorded" 2 stats.Mc.Pexplore.domains_used

let test_progress_callback () =
  let calls = ref 0 in
  let last_states = ref 0 in
  let (_ : (int, string) Mc.Explore.space) =
    Mc.Pexplore.space ~domains:2
      ~progress:(fun ~depth:_ ~states ~frontier:_ ->
        incr calls;
        last_states := states)
      (counter 50)
  in
  check Alcotest.bool "progress called per level" true (!calls >= 50);
  check Alcotest.bool "progress saw interned states" true (!last_states > 0)

let tests =
  ( "pexplore",
    [
      QCheck_alcotest.to_alcotest prop_space_parity;
      QCheck_alcotest.to_alcotest prop_find_parity;
      QCheck_alcotest.to_alcotest prop_bound_parity;
      Alcotest.test_case "counter parity (marshal)" `Quick test_counter_parity;
      Alcotest.test_case "binary heartbeat byte-identical" `Quick
        test_heartbeat_byte_identical;
      Alcotest.test_case "binary heartbeat truncated parity" `Quick
        test_heartbeat_truncated_parity;
      Alcotest.test_case "binary heartbeat find parity" `Quick
        test_heartbeat_find_parity;
      QCheck_alcotest.to_alcotest prop_store_engine_parity;
      Alcotest.test_case "PA models: stores x engines byte-identical" `Quick
        test_pa_store_engine_byte_identical;
      Alcotest.test_case "replay:false keeps the structure" `Quick
        test_noreplay_same_structure;
      Alcotest.test_case "exploration stats consistency" `Quick
        test_stats_consistency;
      Alcotest.test_case "progress callback" `Quick test_progress_callback;
    ] )
