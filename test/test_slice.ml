(* Tests for the property-driven static slicer (lib/slice).

   Slicing is an exact label-preserving projection, so the load-bearing
   property is verdict parity in BOTH directions: the sliced system and
   the full system agree on every safety and LTL verdict, on random
   models and on all six shipped protocol variants, alone and composed
   with the ample-set reduction and the parallel engine.  Sliced
   counterexamples must replay in the full model (the certificate), the
   post-slice static bound must never exceed the full one, and the
   slice diagnostics must be deterministic. *)

module T = Proc.Term
module Sem = Proc.Semantics
module M = Ta.Model
module E = Ta.Expr

let check = Alcotest.check
let max_states = 100_000

(* --- random timed-automata networks ----------------------------------

   Richer than test_ta's generator on purpose: two variables (x is the
   property observable, y is often dead), two clocks (k is read by
   guards, m is usually write-only), and occasional invariants — so the
   dead-write, constant-folding and clock-activity passes all genuinely
   fire on a fair share of the samples. *)

let random_network : M.t QCheck.arbitrary =
  let open QCheck.Gen in
  let guard_gen =
    oneof
      [
        return E.True;
        return E.(v "x" = i 0);
        return E.(v "x" = i 1);
        return E.(v "y" = i 1);
        return E.(clk "k" <= i 2);
        return E.(clk "k" >= i 1);
        return E.(clk "m" >= i 2);
      ]
  in
  let updates_gen =
    oneof
      [
        return [];
        return [ M.Assign (M.Scalar "x", E.i 1) ];
        return [ M.Assign (M.Scalar "x", E.i 0) ];
        return [ M.Assign (M.Scalar "y", E.(v "x" + i 1)) ];
        return [ M.Assign (M.Scalar "y", E.i 1) ];
        return [ M.Reset "k" ];
        return [ M.Reset "m" ];
      ]
  in
  let edge_gen name locs =
    let loc_name i = Printf.sprintf "L%d" i in
    map3
      (fun src dst (g, us) ->
        M.edge ~src:(loc_name src) ~dst:(loc_name dst) ~guard:g ~updates:us
          ~act:(Printf.sprintf "%s%d%d" name src dst) ())
      (int_bound (locs - 1))
      (int_bound (locs - 1))
      (pair guard_gen updates_gen)
  in
  let location_gen i =
    oneofl
      [
        M.loc (Printf.sprintf "L%d" i);
        M.loc ~invariant:E.(clk "k" <= i 3) (Printf.sprintf "L%d" i);
      ]
  in
  let automaton_gen name =
    int_range 1 3 >>= fun locs ->
    list_size (int_bound 5) (edge_gen name locs) >>= fun edges ->
    let rec locations i =
      if i = locs then return []
      else
        location_gen i >>= fun l ->
        locations (i + 1) >>= fun rest -> return (l :: rest)
    in
    locations 0 >>= fun locations ->
    return { M.auto_name = name; locations; edges; init_loc = "L0" }
  in
  let network_gen =
    automaton_gen "a" >>= fun a ->
    automaton_gen "b" >>= fun b ->
    return
      {
        M.vars = [ M.scalar "x" 0; M.scalar "y" 0 ];
        clocks =
          [ { M.clock_name = "k"; cap = 4 }; { M.clock_name = "m"; cap = 4 } ];
        chans = [];
        automata = [ { a with M.auto_name = "A" }; { b with M.auto_name = "B" } ];
      }
  in
  QCheck.make
    ~print:(fun net ->
      Format.asprintf "%d+%d edges"
        (List.length (List.nth net.M.automata 0).M.edges)
        (List.length (List.nth net.M.automata 1).M.edges))
    network_gen

(* the property every random safety check observes: x = 1 *)
let seed = { Slice.Ta.empty_seed with Slice.Ta.seed_vars = [ "x" ] }

let bad_of net =
  let xv = Ta.Semantics.var net "x" in
  fun c -> xv c = 1

let prop_ta_safety_parity =
  QCheck.Test.make
    ~name:"TA safety verdicts agree full vs sliced, cex replays" ~count:120
    random_network (fun model ->
      let net = Ta.Semantics.compile model in
      let sys = Ta.Semantics.system net in
      let full = Mc.Safety.check_state ~max_states sys (bad_of net) in
      let sl = Slice.Ta.slice ~seed model in
      let snet = Ta.Semantics.compile sl.Slice.Ta.model in
      let sliced =
        Mc.Safety.check_state ~max_states
          ~slice:(Slice.Ta.system sl snet)
          sys (bad_of snet)
      in
      match (full, sliced) with
      | Mc.Safety.Holds, Mc.Safety.Holds -> true
      | Mc.Safety.Violated _, Mc.Safety.Violated trace ->
          (* the certificate: the sliced trace is a run of the full model *)
          Slice.replay sys trace
      | _ -> false)

let prop_ta_slice_never_grows =
  QCheck.Test.make ~name:"sliced state space is never larger" ~count:120
    random_network (fun model ->
      let count sys = fst (Mc.Explore.count ~max_states sys) in
      let full = count (Ta.Semantics.system (Ta.Semantics.compile model)) in
      let sl = Slice.Ta.slice ~seed model in
      let sliced =
        count (Slice.Ta.system sl (Ta.Semantics.compile sl.Slice.Ta.model))
      in
      sliced >= 1 && sliced <= full)

let prop_ta_bound_shrinks =
  QCheck.Test.make
    ~name:"post-slice static bound never exceeds the full bound" ~count:120
    random_network (fun model ->
      let full = Lint.Ta_model.static_bound model in
      let sl = Slice.Ta.slice ~seed model in
      match (full, sl.Slice.Ta.expected) with
      | Lint.Interval.Finite f, Lint.Interval.Finite s -> s <= f
      | _, Lint.Interval.Unbounded -> full = Lint.Interval.Unbounded
      | Lint.Interval.Unbounded, Lint.Interval.Finite _ -> true)

let ta_label_formulas =
  let atom a =
    Ltl.Formula.lbl a (fun l -> l = Ta.Semantics.Act a)
  in
  [
    Ltl.Formula.infinitely_often (atom "a01");
    Ltl.Formula.globally (Ltl.Formula.Not (atom "b00"));
    Ltl.Formula.implies
      (Ltl.Formula.finally (atom "a00"))
      (Ltl.Formula.finally (atom "b01"));
  ]

let prop_ta_ltl_parity =
  QCheck.Test.make ~name:"TA LTL verdicts agree full vs sliced" ~count:60
    random_network (fun model ->
      (* label-only formulas: the empty seed is the right one *)
      let sys = Ta.Semantics.system (Ta.Semantics.compile model) in
      let sl = Slice.Ta.slice model in
      let ssys =
        Slice.Ta.system sl (Ta.Semantics.compile sl.Slice.Ta.model)
      in
      List.for_all
        (fun f ->
          Ltl.Check.holds (Ltl.Check.check ~max_states sys f)
          = Ltl.Check.holds (Ltl.Check.check ~max_states ~slice:ssys sys f))
        ta_label_formulas)

(* --- random process-algebra specifications ---------------------------

   Reuses test_por's generator and monitor shapes; the slice composes
   with the ample-set reduction and the parallel engine, so parity is
   checked for slice alone, slice + reduction, and slice + reduction at
   4 domains. *)

let prop_pa_safety_parity =
  QCheck.Test.make
    ~name:"PA monitor verdicts agree full vs sliced (+reduce, +domains)"
    ~count:60 Test_por.random_spec (fun spec ->
      let sys = Sem.system spec in
      let sl = Slice.Pa.slice spec in
      let ssys = Sem.system sl.Slice.Pa.spec in
      let a = Por.analyze sl.Slice.Pa.spec in
      List.for_all
        (fun (monitor, alphabet) ->
          let full = Mc.Safety.check_monitor ~max_states sys monitor in
          let agree v =
            match (full, v) with
            | Mc.Safety.Holds, Mc.Safety.Holds -> true
            | Mc.Safety.Violated _, Mc.Safety.Violated trace ->
                Slice.replay sys trace
            | _ -> false
          in
          agree
            (Mc.Safety.check_monitor ~max_states ~slice:ssys sys monitor)
          && agree
               (Mc.Safety.check_monitor ~max_states ~slice:ssys
                  ~reduction:(Por.reduced_system ~alphabet a)
                  sys monitor)
          && agree
               (Mc.Safety.check_monitor ~max_states ~slice:ssys
                  ~reduction:(Por.reduced_system ~alphabet ~par:true a)
                  ~parallel_reduction:true ~domains:4 sys monitor))
        Test_por.sample_monitors)

(* --- pinned slicer behaviour ----------------------------------------- *)

(* A constant variable is folded, a dead one removed, and the guards
   still mean the same thing. *)
let test_ta_constant_folding () =
  let a =
    {
      M.auto_name = "A";
      locations = [ M.loc "L0"; M.loc "L1" ];
      edges =
        [
          M.edge ~src:"L0" ~dst:"L1" ~guard:E.(v "c" = i 7) ~act:"go" ();
          M.edge ~src:"L1" ~dst:"L0"
            ~updates:[ M.Assign (M.Scalar "dead", E.i 3) ]
            ~act:"back" ();
        ];
      init_loc = "L0";
    }
  in
  let model =
    {
      M.vars = [ M.scalar "c" 7; M.scalar "dead" 0; M.scalar "x" 0 ];
      clocks = [];
      chans = [];
      automata = [ a ];
    }
  in
  let sl = Slice.Ta.slice ~seed model in
  check Alcotest.(list (pair string int)) "c folded to 7" [ ("c", 7) ]
    sl.Slice.Ta.folded;
  check Alcotest.bool "dead is sliced away" true
    (List.mem "dead" sl.Slice.Ta.removed_vars);
  let count m = fst (Mc.Explore.count ~max_states (Ta.Semantics.system (Ta.Semantics.compile m))) in
  (* full = 4 (two locations x two values of dead); the slice collapses
     the dead dimension *)
  check Alcotest.int "full model has 4 states" 4 (count model);
  check Alcotest.int "sliced model has 2 states" 2 (count sl.Slice.Ta.model)

(* A clock that is reset on the way into a location where nothing reads
   it is inactive there, and the canonicalizer merges its drift. *)
let test_ta_clock_activity () =
  let a =
    {
      M.auto_name = "A";
      locations = [ M.loc "L0"; M.loc "L1" ];
      edges =
        [
          M.edge ~src:"L0" ~dst:"L1" ~updates:[ M.Reset "k" ] ~act:"go" ();
          M.edge ~src:"L1" ~dst:"L0" ~guard:E.(clk "k" >= i 2) ~act:"back" ();
        ];
      init_loc = "L0";
    }
  in
  let model =
    {
      M.vars = [ M.scalar "x" 0 ];
      clocks = [ { M.clock_name = "k"; cap = 3 } ];
      chans = [];
      automata = [ a ];
    }
  in
  let sl = Slice.Ta.slice ~seed model in
  check Alcotest.bool "k is inactive somewhere" true
    (List.exists
       (fun (auto, locs) ->
         auto = "A"
         && List.exists (fun (_, clocks) -> List.mem "k" clocks) locs)
       sl.Slice.Ta.inactive);
  let count sys = fst (Mc.Explore.count ~max_states sys) in
  let full = count (Ta.Semantics.system (Ta.Semantics.compile model)) in
  let sliced =
    count (Slice.Ta.system sl (Ta.Semantics.compile sl.Slice.Ta.model))
  in
  check Alcotest.bool
    (Printf.sprintf "canonicalization merges states (%d < %d)" sliced full)
    true (sliced < full)

(* A provably constant parameter is folded and a dead one dropped, and
   the action traces are untouched. *)
let test_pa_param_slicing () =
  let p =
    let open Proc.Pexpr in
    T.def "P" [ "t"; "junk" ]
      (T.choice
         [
           T.(act "tick" [] @. call "P" Proc.Pexpr.[ v "t"; v "junk" + int 1 ]);
           T.when_ (v "t" = int 2)
             T.(act "a" [] @. call "P" Proc.Pexpr.[ v "t"; int 0 ]);
         ])
  in
  let spec =
    {
      Proc.Spec.defs = [ p ];
      init = [ ("P", [ Proc.Value.int 2; Proc.Value.int 0 ]) ];
      comms = [];
      allow = [ "a" ];
      hide = [];
    }
  in
  let sl = Slice.Pa.slice spec in
  check Alcotest.bool "t folded to 2" true
    (List.exists
       (fun (d, prm, _) -> d = "P" && prm = "t")
       sl.Slice.Pa.folded_params);
  check Alcotest.bool "junk dropped" true
    (List.mem ("P", "junk") sl.Slice.Pa.dropped_params);
  let count spec = fst (Mc.Explore.count ~max_states (Sem.system spec)) in
  check Alcotest.bool "sliced is no larger" true
    (count sl.Slice.Pa.spec <= count spec);
  let full = Mc.Safety.check_monitor ~max_states (Sem.system spec)
      (Mc.Monitor.never (fun l -> Sem.label_name l = "a"))
  and sliced =
    Mc.Safety.check_monitor ~max_states (Sem.system sl.Slice.Pa.spec)
      (Mc.Monitor.never (fun l -> Sem.label_name l = "a"))
  in
  check Alcotest.bool "both violated (a happens)" true
    (match (full, sliced) with
    | Mc.Safety.Violated _, Mc.Safety.Violated _ -> true
    | _ -> false)

(* --- the shipped protocol variants ----------------------------------- *)

let pa_variants =
  [ Heartbeat.Pa_models.Binary; Heartbeat.Pa_models.Revised;
    Heartbeat.Pa_models.Two_phase; Heartbeat.Pa_models.Static;
    Heartbeat.Pa_models.Expanding; Heartbeat.Pa_models.Dynamic ]

let small_params = Heartbeat.Params.make ~n:1 ~tmin:2 ~tmax:3 ()

let test_pa_variant_safety_parity () =
  List.iter
    (fun v ->
      List.iter
        (fun req ->
          let full = Heartbeat.Pa_verify.check v small_params req in
          List.iter
            (fun (label, verdict) ->
              check Alcotest.bool
                (Printf.sprintf "%s %s full = %s"
                   (Heartbeat.Pa_models.variant_name v)
                   (Heartbeat.Requirements.name req)
                   label)
                full verdict)
            [
              ("sliced", Heartbeat.Pa_verify.check ~slice:true v small_params req);
              ( "sliced+reduced",
                Heartbeat.Pa_verify.check ~slice:true ~reduce:true v
                  small_params req );
              ( "sliced+reduced at 4 domains",
                Heartbeat.Pa_verify.check ~slice:true ~reduce:true ~domains:4 v
                  small_params req );
            ])
        Heartbeat.Requirements.all)
    pa_variants

let test_ta_variant_safety_parity () =
  (* tmin = tmax = 2 is the race point: the unfixed R2/R3 violations
     exercise the sliced-counterexample certificate *)
  let datasets =
    [ Heartbeat.Params.make ~tmin:2 ~tmax:2 ();
      Heartbeat.Params.make ~tmin:2 ~tmax:3 () ]
  in
  let replays = ref 0 in
  List.iter
    (fun v ->
      List.iter
        (fun params ->
          List.iter
            (fun req ->
              let full = Heartbeat.Verify.check v params req in
              let sl = Heartbeat.Verify.check ~slice:true v params req in
              check Alcotest.bool
                (Printf.sprintf "%s %s full = sliced"
                   (Heartbeat.Ta_models.variant_name v)
                   (Heartbeat.Requirements.name req))
                full.Heartbeat.Verify.holds sl.Heartbeat.Verify.holds;
              match sl.Heartbeat.Verify.counterexample with
              | None -> ()
              | Some trace ->
                  incr replays;
                  let model =
                    Heartbeat.Ta_models.build
                      ~with_r1_monitors:
                        (Heartbeat.Requirements.needs_monitors req)
                      v params
                  in
                  check Alcotest.bool
                    (Printf.sprintf "%s %s sliced cex replays in full"
                       (Heartbeat.Ta_models.variant_name v)
                       (Heartbeat.Requirements.name req))
                    true
                    (Slice.replay
                       (Ta.Semantics.system (Ta.Semantics.compile model))
                       trace))
            Heartbeat.Requirements.all)
        datasets)
    Heartbeat.Ta_models.all_variants;
  check Alcotest.bool "at least one certificate was exercised" true
    (!replays > 0)

let test_variant_liveness_parity () =
  let params = Heartbeat.Params.make ~tmin:2 ~tmax:2 () in
  List.iter
    (fun req ->
      (* TA encoding *)
      List.iter
        (fun v ->
          check Alcotest.bool
            (Printf.sprintf "ta %s %s live full = sliced"
               (Heartbeat.Ta_models.variant_name v)
               (Heartbeat.Requirements.name req))
            (Ltl.Check.holds (Heartbeat.Verify.check_live v params req))
            (Ltl.Check.holds
               (Heartbeat.Verify.check_live ~slice:true v params req)))
        [ Heartbeat.Ta_models.Binary; Heartbeat.Ta_models.Revised ];
      (* PA encoding, composed with the reduction *)
      List.iter
        (fun v ->
          let full = Heartbeat.Pa_verify.check_live v params req in
          check Alcotest.bool
            (Printf.sprintf "pa %s %s live full = sliced+reduced"
               (Heartbeat.Pa_models.variant_name v)
               (Heartbeat.Requirements.name req))
            (Ltl.Check.holds full)
            (Ltl.Check.holds
               (Heartbeat.Pa_verify.check_live ~slice:true ~reduce:true v
                  params req)))
        [ Heartbeat.Pa_models.Binary; Heartbeat.Pa_models.Revised ])
    Heartbeat.Requirements.all

(* --- diagnostics and caches ------------------------------------------ *)

let test_diagnostics_deterministic () =
  (* the slice summaries are rendered from hash tables internally; the
     reports must nonetheless come out in a stable order *)
  let params = Heartbeat.Params.make ~n:2 ~tmin:2 ~tmax:4 () in
  let model =
    Heartbeat.Ta_models.build ~with_r1_monitors:true
      Heartbeat.Ta_models.Dynamic params
  in
  let render_ta () =
    List.map
      (fun (d : Lint.Report.diag) -> Format.asprintf "%a" Lint.Report.pp_diag d)
      (Slice.Ta.diagnostics (Slice.Ta.slice model))
  in
  let spec =
    Heartbeat.Pa_models.build Heartbeat.Pa_models.Dynamic params
  in
  let render_pa () =
    List.map
      (fun (d : Lint.Report.diag) -> Format.asprintf "%a" Lint.Report.pp_diag d)
      (Slice.Pa.diagnostics (Slice.Pa.slice spec))
  in
  check Alcotest.(list string) "TA slice diagnostics reproduce" (render_ta ())
    (render_ta ());
  check Alcotest.(list string) "PA slice diagnostics reproduce" (render_pa ())
    (render_pa ());
  check Alcotest.bool "TA slice diagnostics are non-empty" true
    (render_ta () <> [])

let test_analysis_cache_hits () =
  (* repeated analyses of the same spec hit the memo table *)
  let spec = Heartbeat.Pa_models.build Heartbeat.Pa_models.Binary small_params in
  let a1 = Por.analyze_cached spec in
  let before = snd (Por.cache_stats ()) in
  let a2 = Por.analyze_cached spec in
  let after = snd (Por.cache_stats ()) in
  check Alcotest.bool "second lookup hits" true (after > before);
  check Alcotest.bool "cached analysis is the same" true (a1 == a2)

let tests =
  ( "slice",
    [
      QCheck_alcotest.to_alcotest prop_ta_safety_parity;
      QCheck_alcotest.to_alcotest prop_ta_slice_never_grows;
      QCheck_alcotest.to_alcotest prop_ta_bound_shrinks;
      QCheck_alcotest.to_alcotest prop_ta_ltl_parity;
      QCheck_alcotest.to_alcotest prop_pa_safety_parity;
      Alcotest.test_case "TA constant folding" `Quick test_ta_constant_folding;
      Alcotest.test_case "TA clock activity" `Quick test_ta_clock_activity;
      Alcotest.test_case "PA parameter slicing" `Quick test_pa_param_slicing;
      Alcotest.test_case "shipped PA variants: safety parity" `Slow
        test_pa_variant_safety_parity;
      Alcotest.test_case "shipped TA variants: safety parity + certificate"
        `Slow test_ta_variant_safety_parity;
      Alcotest.test_case "shipped variants: liveness parity" `Slow
        test_variant_liveness_parity;
      Alcotest.test_case "slice diagnostics deterministic" `Quick
        test_diagnostics_deterministic;
      Alcotest.test_case "analysis caches hit on repeats" `Quick
        test_analysis_cache_hits;
    ] )
