(* Aggregate test runner for all suites. *)

let () =
  Alcotest.run "hbproto"
    [
      Test_lts.tests;
      Test_mc.tests;
      Test_ltl.tests;
      Test_pexplore.tests;
      Test_store.tests;
      Test_proc.tests;
      Test_ta.tests;
      Test_sim.tests;
      Test_heartbeat.tests;
      Test_export.tests;
      Test_runtime.tests;
      Test_fault.tests;
      Test_fd.tests;
      Test_lint.tests;
      Test_por.tests;
      Test_resilience.tests;
      Test_slice.tests;
      Test_zone.tests;
      Test_lubounds.tests;
    ]
