(* Tests for the ample-set partial-order reduction (lib/por).

   The load-bearing properties are checked on random multi-component
   specifications AND on all six shipped protocol variants:

   - the reduced exploration is a sub-structure of the full one;
   - safety-monitor verdicts are identical full vs reduced, and reduced
     counterexample traces replay in the full system;
   - the reduced LTS is weak-trace equivalent to the full one relative
     to the property alphabet;
   - LTL verdicts on stutter-invariant formulas are identical;
   - truncated reduced runs are deterministic and report incompleteness. *)

module T = Proc.Term
module Sem = Proc.Semantics

let check = Alcotest.check

(* --- random multi-component specifications ---------------------------

   2-4 components, each a two-state guarded loop over ticks, local
   visible actions (v_i), hidden actions (h_i) and two communication
   pairs shared by everyone.  Tick-free loops are common, so the
   runtime cycle proviso is genuinely exercised (the shipped variants
   are all statically zeno-free and never reach it). *)

let random_spec : Proc.Spec.t QCheck.arbitrary =
  let open QCheck.Gen in
  let actions i =
    [ "tick"; "tick"; Printf.sprintf "v%d" i; Printf.sprintf "h%d" i;
      "snd0"; "rcv0"; "snd1"; "rcv1" ]
  in
  let summand_gen i self other =
    oneofl (actions i) >>= fun act ->
    oneofl [ self; other ] >>= fun next ->
    return (T.Prefix (T.act act [], T.call next []))
  in
  let component_gen i =
    let a = Printf.sprintf "C%d" i and b = Printf.sprintf "D%d" i in
    list_size (int_range 1 3) (summand_gen i a b) >>= fun sa ->
    list_size (int_range 1 3) (summand_gen i b a) >>= fun sb ->
    return [ T.def a [] (T.choice sa); T.def b [] (T.choice sb) ]
  in
  let spec_gen =
    int_range 2 4 >>= fun k ->
    let rec defs i =
      if i = k then return []
      else
        component_gen i >>= fun ds ->
        defs (i + 1) >>= fun rest -> return (ds @ rest)
    in
    defs 0 >>= fun defs ->
    return
      {
        Proc.Spec.defs;
        init = List.init k (fun i -> (Printf.sprintf "C%d" i, []));
        comms = [ ("snd0", "rcv0", "c0"); ("snd1", "rcv1", "c1") ];
        allow = [ "c0"; "c1"; "v0"; "v1"; "v2"; "v3" ];
        hide = [ "h0"; "h1"; "h2"; "h3" ];
      }
  in
  QCheck.make
    ~print:(fun spec ->
      String.concat " | "
        (List.map
           (fun (d : T.def) ->
             d.T.def_name ^ " = " ^ Format.asprintf "%a" Proc.Term.pp d.T.body)
           spec.Proc.Spec.defs))
    spec_gen

let max_states = 100_000

let explore_counts sys =
  let count, complete = Mc.Explore.count ~max_states sys in
  Alcotest.(check bool) "exploration complete" true complete;
  count

(* Can the label trace be replayed from the initial state of [sys]? *)
let replayable sys trace =
  let module S =
    (val sys : Mc.System.S
           with type state = Sem.state
            and type label = Sem.label)
  in
  let rec go s = function
    | [] -> true
    | l :: rest ->
        List.exists (fun (l', s') -> l' = l && go s' rest) (S.successors s)
  in
  go S.initial trace

(* The three monitor shapes used on the real models, with their
   alphabets, over the random specs' action names. *)
let name_is n (l : Sem.label) = Sem.label_name l = n
let is_tick (l : Sem.label) = l = Sem.Tick

let sample_monitors =
  [
    (Mc.Monitor.never (name_is "c0"), [ "c0" ]);
    ( Mc.Monitor.precedence ~fault:(name_is "v0") ~bad:(name_is "c1"),
      [ "v0"; "c1" ] );
    ( Mc.Monitor.deadline ~tick:is_tick ~reset:(name_is "c0")
        ~ok:(name_is "v1") 3,
      [ "tick"; "c0"; "v1" ] );
  ]

let prop_reduced_substructure =
  QCheck.Test.make ~name:"reduced explores no more states than full" ~count:150
    random_spec (fun spec ->
      let a = Por.analyze spec in
      let full = explore_counts (Sem.system spec) in
      let red = explore_counts (Por.reduced_system a) in
      red >= 1 && red <= full)

let prop_safety_parity =
  QCheck.Test.make ~name:"monitor verdicts agree full vs reduced" ~count:150
    random_spec (fun spec ->
      let a = Por.analyze spec in
      let sys = Sem.system spec in
      List.for_all
        (fun (monitor, alphabet) ->
          let full = Mc.Safety.check_monitor ~max_states sys monitor in
          let red =
            Mc.Safety.check_monitor ~max_states
              ~reduction:(Por.reduced_system ~alphabet a)
              sys monitor
          in
          match (full, red) with
          | Mc.Safety.Holds, Mc.Safety.Holds -> true
          | Mc.Safety.Violated _, Mc.Safety.Violated trace ->
              (* the reduced counterexample is a real run of the full
                 system *)
              replayable sys trace
          | _ -> false)
        sample_monitors)

let prop_weak_trace_equivalent =
  QCheck.Test.make
    ~name:"reduced LTS weak-trace equivalent to full (property alphabet)"
    ~count:75 random_spec (fun spec ->
      let a = Por.analyze spec in
      let space sys = (Mc.Explore.space ~max_states sys).Mc.Explore.lts in
      let full = space (Sem.system spec) in
      List.for_all
        (fun alphabet ->
          let red = space (Por.reduced_system ~alphabet a) in
          let hidden (l : Sem.label) =
            not (List.mem (Sem.label_name l) alphabet)
          in
          Lts.Equiv.weak_trace_equivalent ~hidden full red)
        [ [ "c0"; "v0" ]; [ "tick"; "c1" ] ])

let stutter_formulas =
  let atom name = Ltl.Formula.lbl name (name_is name) in
  [
    Ltl.Formula.infinitely_often (atom "c0");
    Ltl.Formula.globally (Ltl.Formula.Not (atom "c1"));
    Ltl.Formula.implies
      (Ltl.Formula.finally (atom "v0"))
      (Ltl.Formula.finally (atom "c0"));
  ]

let prop_ltl_parity =
  QCheck.Test.make ~name:"LTL verdicts agree full vs reduced" ~count:75
    random_spec (fun spec ->
      let a = Por.analyze spec in
      let sys = Sem.system spec in
      List.for_all
        (fun f ->
          let full = Ltl.Check.check ~max_states sys f in
          let red =
            Ltl.Check.check ~max_states ~reduction:(Por.reduction a) sys f
          in
          Ltl.Check.holds full = Ltl.Check.holds red)
        stutter_formulas)

(* --- the shipped protocol variants ----------------------------------- *)

let pa_variants =
  [ Heartbeat.Pa_models.Binary; Heartbeat.Pa_models.Revised;
    Heartbeat.Pa_models.Two_phase; Heartbeat.Pa_models.Static;
    Heartbeat.Pa_models.Expanding; Heartbeat.Pa_models.Dynamic ]

let small_params = Heartbeat.Params.make ~n:1 ~tmin:2 ~tmax:3 ()

let test_variant_safety_parity () =
  List.iter
    (fun v ->
      List.iter
        (fun req ->
          let full = Heartbeat.Pa_verify.check v small_params req in
          let red =
            Heartbeat.Pa_verify.check ~reduce:true v small_params req
          in
          check Alcotest.bool
            (Printf.sprintf "%s %s full = reduced"
               (Heartbeat.Pa_models.variant_name v)
               (Heartbeat.Requirements.name req))
            full red)
        Heartbeat.Requirements.all)
    pa_variants

let test_static_n2_safety_parity () =
  let params = Heartbeat.Params.make ~n:2 ~tmin:2 ~tmax:2 () in
  List.iter
    (fun req ->
      check Alcotest.bool
        (Printf.sprintf "static n=2 %s full = reduced"
           (Heartbeat.Requirements.name req))
        (Heartbeat.Pa_verify.check Heartbeat.Pa_models.Static params req)
        (Heartbeat.Pa_verify.check ~reduce:true Heartbeat.Pa_models.Static
           params req))
    Heartbeat.Requirements.all

let test_variant_liveness_parity () =
  let params = Heartbeat.Params.make ~tmin:2 ~tmax:2 () in
  List.iter
    (fun v ->
      List.iter
        (fun req ->
          let full = Heartbeat.Pa_verify.check_live v params req in
          let red =
            Heartbeat.Pa_verify.check_live ~reduce:true v params req
          in
          check Alcotest.bool
            (Printf.sprintf "%s %s live full = reduced"
               (Heartbeat.Pa_models.variant_name v)
               (Heartbeat.Requirements.name req))
            (Ltl.Check.holds full) (Ltl.Check.holds red))
        Heartbeat.Requirements.all)
    [ Heartbeat.Pa_models.Binary; Heartbeat.Pa_models.Revised ]

let test_variant_weak_trace_equiv () =
  (* one genuinely visible alphabet: the R3 fault/bad names of binary *)
  let params = Heartbeat.Params.make ~tmin:1 ~tmax:2 () in
  let spec = Heartbeat.Pa_models.build Heartbeat.Pa_models.Binary params in
  let a = Por.analyze spec in
  let alphabet =
    [ Heartbeat.Pa_models.act_inactivate_nv_p0;
      Heartbeat.Pa_models.act_beat_delivered_to_p0 1 ]
  in
  let space sys = (Mc.Explore.space ~max_states sys).Mc.Explore.lts in
  let full = space (Sem.system spec) in
  let red = space (Por.reduced_system ~alphabet a) in
  check Alcotest.bool "reduced is smaller or equal" true
    (Lts.Graph.num_states red <= Lts.Graph.num_states full);
  check Alcotest.bool "weak-trace equivalent" true
    (Lts.Equiv.weak_trace_equivalent
       ~hidden:(fun l -> not (List.mem (Sem.label_name l) alphabet))
       full red)

let test_variants_zeno_free () =
  (* all six shipped variants are statically zeno-free (every global
     cycle ticks), so their reduction never needs the runtime proviso *)
  let params = Heartbeat.Params.make ~n:2 ~tmin:2 ~tmax:4 () in
  List.iter
    (fun v ->
      let a = Por.analyze (Heartbeat.Pa_models.build v params) in
      check Alcotest.bool
        (Heartbeat.Pa_models.variant_name v ^ " zeno-free")
        true (Por.zeno_free a);
      check
        Alcotest.(list int)
        (Heartbeat.Pa_models.variant_name v ^ " no suspects")
        [] (Por.zeno_suspects a))
    pa_variants

let test_zeno_suspects_detected () =
  (* a tick-free self-loop is not zeno-free, and the suspect is named *)
  let d = T.def "X" [] (T.Prefix (T.act "a" [], T.call "X" [])) in
  let spec =
    {
      Proc.Spec.defs = [ d ];
      init = [ ("X", []) ];
      comms = [];
      allow = [ "a" ];
      hide = [];
    }
  in
  let a = Por.analyze spec in
  check Alcotest.bool "not zeno-free" false (Por.zeno_free a);
  check Alcotest.(list int) "component 0 suspected" [ 0 ]
    (Por.zeno_suspects a)

(* --- the parallel-safe proviso --------------------------------------- *)

(* Satellite gate: monitor verdicts agree full vs par-reduced at 1 and 4
   domains.  The par proviso judges back edges against lock-striped
   discovery stamps instead of the sequential seen-set, so only verdict
   parity (not byte parity) is promised — which is exactly what this
   property checks, including counterexample replayability. *)
let prop_parallel_safety_parity =
  QCheck.Test.make
    ~name:"monitor verdicts agree full vs par-reduced (d in {1,4})" ~count:60
    random_spec (fun spec ->
      let a = Por.analyze spec in
      let sys = Sem.system spec in
      List.for_all
        (fun (monitor, alphabet) ->
          let full = Mc.Safety.check_monitor ~max_states sys monitor in
          List.for_all
            (fun domains ->
              let red =
                Mc.Safety.check_monitor ~max_states
                  ~reduction:(Por.reduced_system ~alphabet ~par:true a)
                  ~parallel_reduction:true ~domains sys monitor
              in
              match (full, red) with
              | Mc.Safety.Holds, Mc.Safety.Holds -> true
              | Mc.Safety.Violated _, Mc.Safety.Violated trace ->
                  replayable sys trace
              | _ -> false)
            [ 1; 4 ])
        sample_monitors)

let test_variant_parallel_reduced_parity () =
  (* the shipped protocols through the whole stack: Pa_verify.check with
     reduce composes with domains > 1 via the parallel proviso *)
  let params = Heartbeat.Params.make ~tmin:2 ~tmax:3 () in
  List.iter
    (fun v ->
      List.iter
        (fun req ->
          let full = Heartbeat.Pa_verify.check v params req in
          List.iter
            (fun domains ->
              check Alcotest.bool
                (Printf.sprintf "%s %s full = par-reduced at %d domains"
                   (Heartbeat.Pa_models.variant_name v)
                   (Heartbeat.Requirements.name req)
                   domains)
                full
                (Heartbeat.Pa_verify.check ~reduce:true ~domains v params req))
            [ 1; 4 ])
        Heartbeat.Requirements.all)
    [ Heartbeat.Pa_models.Binary; Heartbeat.Pa_models.Static ]

let test_cross_domain_fallback_pinned () =
  (* Pinned regression for the conservative cross-domain fallback.

     C0/D0 is a hidden tick-free 2-cycle (a genuine zeno suspect, so the
     runtime proviso is live); C1 is a visible self-loop kept out of
     every ample set by the alphabet.  A spawned domain expands the
     initial state, stamping it and its ample successor under that
     domain's id.  The main domain then expands the successor: its only
     ample candidate is the back edge to the initial state, whose stamp
     was minted by the other domain — the proviso must take the
     conservative full expansion and count it. *)
  let spec =
    {
      Proc.Spec.defs =
        [
          T.def "C0" [] (T.Prefix (T.act "h0" [], T.call "D0" []));
          T.def "D0" [] (T.Prefix (T.act "h0" [], T.call "C0" []));
          T.def "C1" [] (T.Prefix (T.act "v1" [], T.call "C1" []));
        ];
      init = [ ("C0", []); ("C1", []) ];
      comms = [];
      allow = [ "v1" ];
      hide = [ "h0" ];
    }
  in
  let a = Por.analyze spec in
  check Alcotest.bool "the hidden loop is a zeno suspect" false
    (Por.zeno_free a);
  let rsys, stats = Por.reduced_system_stats ~alphabet:[ "v1" ] ~par:true a in
  let module R =
    (val rsys : Mc.System.S
           with type state = Sem.state
            and type label = Sem.label)
  in
  (* another domain expands the initial state... *)
  let succs0 = Domain.join (Domain.spawn (fun () -> R.successors R.initial)) in
  check Alcotest.bool "initial state was ample-reduced" true
    (List.length succs0 = 1);
  check Alcotest.int "no cross-domain back edge yet" 0
    stats.Por.cross_domain_blocked;
  (* ...and the main domain expands its successor, closing the cycle *)
  let next = snd (List.hd succs0) in
  let succs1 = R.successors next in
  check Alcotest.bool "fallback fully expands the cycle-closing state" true
    (List.length succs1 >= 2);
  check Alcotest.bool "cross-domain fallback was taken and counted" true
    (stats.Por.cross_domain_blocked >= 1);
  check Alcotest.bool "it was a proviso block" true
    (stats.Por.proviso_blocked >= 1)

let test_sequential_proviso_never_cross () =
  (* the sequential proviso can never see a foreign stamp *)
  let params = Heartbeat.Params.make ~tmin:2 ~tmax:3 () in
  let a = Por.analyze (Heartbeat.Pa_models.build Heartbeat.Pa_models.Binary params) in
  let rsys, stats = Por.reduced_system_stats a in
  let _ = explore_counts rsys in
  check Alcotest.int "cross_domain_blocked is 0 sequentially" 0
    stats.Por.cross_domain_blocked

(* --- the stutter-invariance gate ------------------------------------- *)

let test_stutter_classifier () =
  let open Ltl.Formula in
  let a = lbl "a" (name_is "a") and b = lbl "b" (name_is "b") in
  check Alcotest.bool "GF a invariant" true
    (stutter_invariant (infinitely_often a));
  check Alcotest.bool "G not a invariant" true
    (stutter_invariant (globally (Not a)));
  check Alcotest.bool "Fa -> Fb invariant" true
    (stutter_invariant (implies (finally a) (finally b)));
  check Alcotest.bool "X a not invariant" false (stutter_invariant (Next a));
  check Alcotest.bool "bare atom not invariant" false (stutter_invariant a);
  check
    Alcotest.(option (list string))
    "alphabet collects atom names"
    (Some [ "a"; "b" ])
    (alphabet (And (infinitely_often a, finally b)));
  check
    Alcotest.(option (list string))
    "Enabled blocks the alphabet" None
    (alphabet (finally (enabled "a" (name_is "a"))))

(* --- truncation x reduction ------------------------------------------ *)

let test_truncated_reduction_deterministic () =
  (* a reduced run that hits the state bound reports complete = false
     with the deterministic BFS-prefix truncation, every time *)
  let params = Heartbeat.Params.make ~tmin:2 ~tmax:4 () in
  let go () =
    Heartbeat.Pa_verify.explore ~max_states:100 ~reduce:true
      Heartbeat.Pa_models.Binary params
  in
  let s1 = go () and s2 = go () in
  check Alcotest.bool "truncated" false s1.Heartbeat.Pa_verify.complete;
  check Alcotest.int "exactly the bound" 100 s1.Heartbeat.Pa_verify.states;
  check Alcotest.bool "byte-deterministic" true (s1 = s2);
  let full = Heartbeat.Pa_verify.explore ~reduce:true Heartbeat.Pa_models.Binary params in
  check Alcotest.bool "unbounded run is complete" true
    full.Heartbeat.Pa_verify.complete

(* --- diagnostics ----------------------------------------------------- *)

let test_diagnostics_deterministic () =
  let spec =
    Heartbeat.Pa_models.build Heartbeat.Pa_models.Binary
      (Heartbeat.Params.make ~tmin:2 ~tmax:4 ())
  in
  let d1 = Por.diagnostics (Por.analyze spec) in
  let d2 = Por.diagnostics (Por.analyze spec) in
  check Alcotest.bool "nonempty" true (d1 <> []);
  check Alcotest.bool "deterministic" true (d1 = d2);
  check Alcotest.bool "all PA-POR infos" true
    (List.for_all
       (fun (d : Lint.Report.diag) ->
         d.Lint.Report.code = "PA-POR"
         && d.Lint.Report.severity = Lint.Report.Info)
       d1)

let tests =
  ( "por",
    [
      Alcotest.test_case "shipped variants: safety parity" `Quick
        test_variant_safety_parity;
      Alcotest.test_case "static n=2: safety parity" `Quick
        test_static_n2_safety_parity;
      Alcotest.test_case "shipped variants: liveness parity" `Quick
        test_variant_liveness_parity;
      Alcotest.test_case "binary: weak-trace equivalence" `Quick
        test_variant_weak_trace_equiv;
      Alcotest.test_case "shipped variants are zeno-free" `Quick
        test_variants_zeno_free;
      Alcotest.test_case "zeno suspects detected" `Quick
        test_zeno_suspects_detected;
      Alcotest.test_case "shipped variants: parallel reduced parity" `Quick
        test_variant_parallel_reduced_parity;
      Alcotest.test_case "cross-domain proviso fallback (pinned)" `Quick
        test_cross_domain_fallback_pinned;
      Alcotest.test_case "sequential proviso never cross-domain" `Quick
        test_sequential_proviso_never_cross;
      QCheck_alcotest.to_alcotest prop_parallel_safety_parity;
      Alcotest.test_case "stutter classifier" `Quick test_stutter_classifier;
      Alcotest.test_case "truncation is deterministic" `Quick
        test_truncated_reduction_deterministic;
      Alcotest.test_case "diagnostics deterministic" `Quick
        test_diagnostics_deterministic;
      QCheck_alcotest.to_alcotest prop_reduced_substructure;
      QCheck_alcotest.to_alcotest prop_safety_parity;
      QCheck_alcotest.to_alcotest prop_weak_trace_equivalent;
      QCheck_alcotest.to_alcotest prop_ltl_parity;
    ] )
