(* Tests for the LTL subsystem: the formula layer, the Büchi pipeline
   checked against a reference evaluator on ultimately-periodic words,
   engine agreement on random systems, fairness, stutter policies, and
   agreement with the CTL and safety checkers. *)

let check = Alcotest.check

module F = Ltl.Formula
module C = Ltl.Check

let lbl l = F.lbl l (String.equal l)
let enb l = F.enabled l (String.equal l)

(* --- reference semantics on ultimately-periodic words --- *)

(* One position of a run: the label taken (None on a stutter step) and
   the labels enabled at the source state. *)
type pos = { tk : string option; en : string list }

let pos_of_label l = { tk = Some l; en = [ l ] }

let pos_of_step = function
  | C.Step l -> pos_of_label l
  | C.Stutter -> { tk = None; en = [] }

(* Satisfaction of [f] on the word [prefix . cycle^ω], by fixpoint
   iteration over the finitely many positions (Until least, Release
   greatest).  Independent of the tableau pipeline: the oracle. *)
let lasso_sat (f : string F.t) (prefix : pos list) (cycle : pos list) : bool =
  let n_pre = List.length prefix in
  let pos = Array.of_list (prefix @ cycle) in
  let n = Array.length pos in
  let next i = if i + 1 < n then i + 1 else n_pre in
  let fixpoint init a b step =
    let x = Array.make n init in
    let changed = ref true in
    while !changed do
      changed := false;
      for i = n - 1 downto 0 do
        let v = step a.(i) b.(i) x.(next i) in
        if v <> x.(i) then (
          x.(i) <- v;
          changed := true)
      done
    done;
    x
  in
  let rec eval = function
    | F.True -> Array.make n true
    | F.False -> Array.make n false
    | F.Lbl (_, p) ->
        Array.map (fun x -> match x.tk with Some l -> p l | None -> false) pos
    | F.Enabled (_, p) -> Array.map (fun x -> List.exists p x.en) pos
    | F.Not f -> Array.map not (eval f)
    | F.And (a, b) -> Array.map2 ( && ) (eval a) (eval b)
    | F.Or (a, b) -> Array.map2 ( || ) (eval a) (eval b)
    | F.Next f ->
        let a = eval f in
        Array.init n (fun i -> a.(next i))
    | F.Until (a, b) ->
        fixpoint false (eval a) (eval b) (fun ai bi xi -> bi || (ai && xi))
    | F.Release (a, b) ->
        fixpoint true (eval a) (eval b) (fun ai bi xi -> bi && (ai || xi))
  in
  (eval f).(0)

(* --- toy systems --- *)

let table transitions : (int, string) Mc.System.t =
  (module struct
    type state = int
    type label = string

    let initial = 0

    let successors s =
      List.filter_map
        (fun (u, l, v) -> if u = s then Some (l, v) else None)
        transitions

    let equal_state = Int.equal
    let hash_state = Hashtbl.hash
    let pp_state = Format.pp_print_int
    let pp_label = Format.pp_print_string
  end)

(* The system whose unique run is [pre . cyc^ω]: one state per word
   position, a single outgoing transition each. *)
let lasso_system pre cyc : (int, string) Mc.System.t =
  let labels = Array.of_list (pre @ cyc) in
  let n = Array.length labels and n_pre = List.length pre in
  (module struct
    type state = int
    type label = string

    let initial = 0
    let successors s = [ (labels.(s), if s + 1 < n then s + 1 else n_pre) ]
    let equal_state = Int.equal
    let hash_state = Hashtbl.hash
    let pp_state = Format.pp_print_int
    let pp_label = Format.pp_print_string
  end)

(* --- generators --- *)

let alphabet = [ "a"; "b"; "c" ]

let formula_gen depth =
  let open QCheck.Gen in
  let atom = oneofl alphabet >>= fun l -> oneofl [ lbl l; enb l ] in
  let rec go depth =
    if depth = 0 then oneof [ return F.True; return F.False; atom ]
    else
      let sub = go (depth - 1) in
      frequency
        [
          (2, atom);
          (1, map (fun f -> F.Not f) sub);
          (1, map2 (fun a b -> F.And (a, b)) sub sub);
          (1, map2 (fun a b -> F.Or (a, b)) sub sub);
          (1, map (fun f -> F.Next f) sub);
          (2, map2 (fun a b -> F.Until (a, b)) sub sub);
          (2, map2 (fun a b -> F.Release (a, b)) sub sub);
        ]
  in
  go depth

let formula_arb = QCheck.make ~print:(Format.asprintf "%a" F.pp) (formula_gen 3)

let word_arb =
  let open QCheck.Gen in
  QCheck.make
    ~print:(fun (p, c) ->
      Printf.sprintf "%s (%s)^w" (String.concat "." p) (String.concat "." c))
    (pair
       (list_size (int_bound 3) (oneofl alphabet))
       (list_size (int_range 1 3) (oneofl alphabet)))

(* --- pipeline vs reference evaluator --- *)

(* On a single-lasso system there is exactly one run, so [check] holds
   iff the reference evaluator accepts the word — this exercises the
   whole tableau / degeneralization / product / emptiness pipeline
   against an independent semantics.  A refutation must additionally be
   a word refuting the formula. *)
let prop_pipeline_vs_reference =
  QCheck.Test.make ~name:"verdict = reference evaluator on single lassos"
    ~count:500
    (QCheck.pair formula_arb word_arb)
    (fun (f, (pre, cyc)) ->
      let sys = lasso_system pre cyc in
      let expected =
        lasso_sat f (List.map pos_of_label pre) (List.map pos_of_label cyc)
      in
      let refutation_refutes = function
        | C.Refuted l ->
            not
              (lasso_sat f
                 (List.map pos_of_step l.C.prefix)
                 (List.map pos_of_step l.C.cycle))
        | C.Holds -> true
        | C.Unknown _ | C.Exhausted _ -> false
      in
      List.for_all
        (fun engine ->
          let v = C.check ~engine sys f in
          C.holds v = expected && refutation_refutes v)
        [ C.Ndfs; C.Scc ])

let prop_nnf_preserves_semantics =
  QCheck.Test.make ~name:"nnf preserves word semantics" ~count:500
    (QCheck.pair formula_arb word_arb)
    (fun (f, (pre, cyc)) ->
      let pre = List.map pos_of_label pre and cyc = List.map pos_of_label cyc in
      lasso_sat f pre cyc = lasso_sat (F.nnf f) pre cyc)

(* --- engine agreement on random branching systems --- *)

let rand_edges_arb =
  let open QCheck.Gen in
  let gen =
    int_range 1 7 >>= fun n ->
    let edge =
      triple (int_bound (n - 1)) (oneofl alphabet) (int_bound (n - 1))
    in
    list_size (int_bound 10) edge >>= fun es -> return (n, es)
  in
  QCheck.make
    ~print:(fun (n, es) ->
      Printf.sprintf "%d states: %s" n
        (String.concat " "
           (List.map (fun (u, l, v) -> Printf.sprintf "%d-%s->%d" u l v) es)))
    gen

(* Deadlocks are likely here, so this also exercises both stutter
   policies on branching state spaces. *)
let prop_engines_agree =
  QCheck.Test.make ~name:"ndfs and scc agree on random systems" ~count:300
    (QCheck.pair formula_arb rand_edges_arb)
    (fun (f, (_, es)) ->
      let sys = table es in
      List.for_all
        (fun stutter ->
          C.holds (C.check ~engine:C.Ndfs ~stutter sys f)
          = C.holds (C.check ~engine:C.Scc ~stutter sys f))
        [ C.Extend; C.Ignore ])

(* --- random process-algebra models --- *)

module T = Proc.Term

let pa_spec_arb =
  let open QCheck.Gen in
  (* Guarded loops over {tick, a, b, snd, rcv}; snd/rcv communicate
     into c — same shape as the exploration properties in test_proc. *)
  let summand self =
    oneofl [ "tick"; "a"; "b"; "snd"; "rcv" ] >>= fun act ->
    return (T.Prefix (T.act act [], T.call self []))
  in
  let component name =
    list_size (int_range 1 4) (summand name) >>= fun summands ->
    return (T.def name [] (T.choice summands))
  in
  let gen =
    component "X" >>= fun x ->
    component "Y" >>= fun y ->
    return
      {
        Proc.Spec.defs = [ x; y ];
        init = [ ("X", []); ("Y", []) ];
        comms = [ ("snd", "rcv", "c") ];
        allow = [ "a"; "b"; "c" ];
        hide = [];
      }
  in
  QCheck.make
    ~print:(fun spec ->
      String.concat " | "
        (List.map
           (fun (d : T.def) -> Format.asprintf "%a" Proc.Term.pp d.T.body)
           spec.Proc.Spec.defs))
    gen

let pa_name name l = Proc.Semantics.label_name l = name
let pa_lbl name = F.lbl name (pa_name name)

let pa_formula_gen =
  let open QCheck.Gen in
  let atom = oneofl [ "tick"; "a"; "b"; "c" ] >>= fun l -> return (pa_lbl l) in
  let rec go depth =
    if depth = 0 then atom
    else
      let sub = go (depth - 1) in
      frequency
        [
          (2, atom);
          (1, map (fun f -> F.Not f) sub);
          (1, map2 (fun a b -> F.Or (a, b)) sub sub);
          (1, map (fun f -> F.Next f) sub);
          (2, map2 (fun a b -> F.Until (a, b)) sub sub);
          (2, map2 (fun a b -> F.Release (a, b)) sub sub);
        ]
  in
  go 3

let prop_engines_agree_pa =
  QCheck.Test.make ~name:"ndfs and scc agree on random PA models" ~count:150
    (QCheck.pair (QCheck.make ~print:(Format.asprintf "%a" F.pp) pa_formula_gen)
       pa_spec_arb)
    (fun (f, spec) ->
      let sys = Proc.Semantics.system spec in
      C.holds (C.check ~engine:C.Ndfs sys f)
      = C.holds (C.check ~engine:C.Scc sys f))

(* For the syntactic-safety fragment, the LTL verdict must agree with
   the regex-based safety checker: forbidding the pattern
   [any* a1 any* a2 ... any* ak] is the formula
   [¬ F (a1 ∧ X F (a2 ∧ ... X F ak))]. *)
let prop_safety_fragment_vs_forbidden =
  let names_arb =
    QCheck.make
      ~print:(String.concat ".")
      QCheck.Gen.(list_size (int_range 1 3) (oneofl [ "a"; "b"; "c" ]))
  in
  QCheck.Test.make ~name:"safety-fragment LTL = Safety.check_forbidden"
    ~count:150
    (QCheck.pair names_arb pa_spec_arb)
    (fun (names, spec) ->
      let r =
        Mc.Regex.seq_list
          (List.concat_map
             (fun nm ->
               [ Mc.Regex.star Mc.Regex.any; Mc.Regex.atom nm (pa_name nm) ])
             names)
      in
      let rec chase = function
        | [] -> assert false
        | [ nm ] -> F.finally (pa_lbl nm)
        | nm :: rest -> F.finally (F.And (pa_lbl nm, F.Next (chase rest)))
      in
      let f = F.Not (chase names) in
      let sys = Proc.Semantics.system spec in
      let safe = Mc.Safety.holds (Mc.Safety.check_forbidden sys r) in
      F.classify f = F.Safety
      && List.for_all
           (fun engine -> C.holds (C.check ~engine sys f) = safe)
           [ C.Ndfs; C.Scc ])

(* --- fairness --- *)

let both_engines sys ?(fairness = []) f =
  let v = C.check ~engine:C.Ndfs ~fairness sys f in
  let v' = C.check ~engine:C.Scc ~fairness sys f in
  check Alcotest.bool "engines agree" (C.holds v) (C.holds v');
  v

let test_weak_fairness () =
  (* 0 can loop on b forever, but a stays enabled throughout: the b-loop
     is unfair under weak fairness on a. *)
  let sys = table [ (0, "a", 1); (0, "b", 0); (1, "a", 1) ] in
  let f = F.finally (lbl "a") in
  check Alcotest.bool "refuted unfair" false (C.holds (both_engines sys f));
  let fairness =
    [ C.weakly_fair "sched" ~enabled:(String.equal "a") ~taken:(String.equal "a") ]
  in
  check Alcotest.bool "holds weakly fair" true
    (C.holds (both_engines sys ~fairness f))

let test_response_fairness () =
  (* The fair-lossy channel: dropping every message forever is excluded
     by response fairness, so delivery becomes inevitable. *)
  let sys =
    table [ (0, "snd", 1); (1, "lose", 0); (1, "dlv", 0) ]
  in
  let f = F.infinitely_often (lbl "dlv") in
  check Alcotest.bool "refuted lossy" false (C.holds (both_engines sys f));
  let fairness =
    [ C.response "ch" ~trigger:(String.equal "snd") ~response:(String.equal "dlv") ]
  in
  check Alcotest.bool "holds fair-lossy" true
    (C.holds (both_engines sys ~fairness f))

let test_often_fairness () =
  let sys = table [ (0, "tick", 0); (0, "a", 0) ] in
  let f = F.finally (lbl "a") in
  check Alcotest.bool "refuted (tick loop)" false
    (C.holds (both_engines sys f));
  let fairness = [ C.often "acts" (String.equal "a") ] in
  check Alcotest.bool "holds under often" true
    (C.holds (both_engines sys ~fairness f))

(* --- stutter policies and the CTL deadlock divergence --- *)

let test_stutter_policies () =
  let chain = [ (0, "a", 1) ] in
  let sys = table chain in
  (* Extend: the deadlock is observable — nothing is ever enabled again. *)
  (match C.check ~stutter:C.Extend sys (F.globally (enb "a")) with
  | C.Refuted l ->
      check
        Alcotest.(list string)
        "stuttering cycle" []
        (C.strip l.C.cycle);
      check Alcotest.bool "cycle nonempty" true (l.C.cycle <> [])
  | _ -> Alcotest.fail "expected Refuted under Extend");
  check Alcotest.bool "F b refuted under Extend" false
    (C.holds (C.check ~stutter:C.Extend sys (F.finally (lbl "b"))));
  (* Ignore: no infinite path, every property holds vacuously. *)
  check Alcotest.bool "G false holds under Ignore" true
    (C.holds (C.check ~stutter:C.Ignore sys (F.globally F.False)));
  (* CTL on the same chain: AF is vacuously true at the deadlock, so the
     two logics diverge under Extend and agree under Ignore. *)
  let space = Mc.Explore.space sys in
  let g = space.Mc.Explore.lts in
  let af_can_b = Mc.Ctl.AF (Mc.Ctl.can "b" (String.equal "b")) in
  check Alcotest.bool "CTL AF (Can b) vacuously true" true
    (Mc.Ctl.holds g af_can_b);
  check Alcotest.bool "LTL Extend disagrees" false
    (C.holds (C.check ~stutter:C.Extend sys (F.finally (enb "b"))));
  check Alcotest.bool "LTL Ignore agrees" true
    (C.holds (C.check ~stutter:C.Ignore sys (F.finally (enb "b"))))

(* --- CTL/LTL agreement on a shipped model --- *)

(* On a deadlock-free system, [AG (Can p)] coincides with [G enabled(p)]
   and [AF (Can p)] with [F enabled(p)] — checked on the binary protocol
   model, where the CTL side runs on the explored graph and the LTL side
   on the fly. *)
let test_ctl_ltl_agreement_shipped () =
  let open Heartbeat in
  let p = Params.make ~n:1 ~tmin:2 ~tmax:2 () in
  let net = Ta.Semantics.compile (Ta_models.build ~fixed:false Ta_models.Binary p) in
  let sys = Ta.Semantics.system net in
  let space = Mc.Explore.space sys in
  let g = space.Mc.Explore.lts in
  check Alcotest.bool "explored" true space.Mc.Explore.complete;
  let deadlock_free =
    Mc.Ctl.holds g (Mc.Ctl.AG (Mc.Ctl.can "any" (fun _ -> true)))
  in
  check Alcotest.bool "binary model deadlock-free" true deadlock_free;
  let preds =
    [
      ("any", fun _ -> true);
      ("delay", fun l -> l = Ta.Semantics.Delay);
      ("timeout_p0", fun l -> l = Ta.Semantics.Act "timeout_p0");
      ("crash_p0", fun l -> l = Ta.Semantics.Act "crash_p0");
      ("never", fun _ -> false);
    ]
  in
  List.iter
    (fun (name, pred) ->
      let ctl_ag = Mc.Ctl.holds g (Mc.Ctl.AG (Mc.Ctl.can name pred)) in
      let ctl_af = Mc.Ctl.holds g (Mc.Ctl.AF (Mc.Ctl.can name pred)) in
      let ltl v = C.holds (C.check sys v) in
      check Alcotest.bool
        ("AG Can = G enabled: " ^ name)
        ctl_ag
        (ltl (F.globally (F.enabled name pred)));
      check Alcotest.bool
        ("AF Can = F enabled: " ^ name)
        ctl_af
        (ltl (F.finally (F.enabled name pred))))
    preds

(* --- shipped-model liveness gate --- *)

(* The §5.5 race on the binary variant, as a tier-1 test: R2-live is
   refuted on the unfixed model at the tmin = tmax race point by a fair
   benign lasso, and holds once fixed; R1-live holds even unfixed. *)
let test_binary_liveness_gate () =
  let open Heartbeat in
  let p = Params.make ~n:1 ~tmin:4 ~tmax:4 () in
  let is_fault = function
    | Ta.Semantics.Act a ->
        let has pre =
          String.length a >= String.length pre
          && String.sub a 0 (String.length pre) = pre
        in
        has "lose" || has "crash_" || has "leave"
    | Ta.Semantics.Delay -> false
  in
  (match Verify.check_live ~fixed:false Ta_models.Binary p Requirements.R2 with
  | Ltl.Check.Refuted l ->
      let steps = C.strip l.C.prefix @ C.strip l.C.cycle in
      check Alcotest.bool "cycle nonempty" true (l.C.cycle <> []);
      check Alcotest.bool "lasso is benign" true
        (not (List.exists is_fault steps));
      check Alcotest.bool "cycle is time-divergent" true
        (List.mem Ta.Semantics.Delay (C.strip l.C.cycle))
  | _ -> Alcotest.fail "expected R2-live refuted on unfixed binary");
  List.iter
    (fun engine ->
      check Alcotest.bool "R2 unfixed refuted (both engines)" false
        (C.holds
           (Verify.check_live ~fixed:false ~engine Ta_models.Binary p
              Requirements.R2));
      check Alcotest.bool "R2 fixed holds (both engines)" true
        (C.holds
           (Verify.check_live ~fixed:true ~engine Ta_models.Binary p
              Requirements.R2)))
    [ Ltl.Check.Ndfs; Ltl.Check.Scc ];
  check Alcotest.bool "R1 holds unfixed" true
    (C.holds (Verify.check_live ~fixed:false Ta_models.Binary p Requirements.R1));
  check Alcotest.bool "R3 fixed holds" true
    (C.holds (Verify.check_live ~fixed:true Ta_models.Binary p Requirements.R3))

(* --- formula layer units --- *)

let cls : F.cls Alcotest.testable =
  Alcotest.testable (fun ppf c -> Format.pp_print_string ppf (F.cls_name c)) ( = )

let test_classify () =
  check cls "bounded" F.Bounded (F.classify (F.Next (F.And (lbl "a", lbl "b"))));
  check cls "safety" F.Safety (F.classify (F.globally (lbl "a")));
  check cls "cosafety" F.Cosafety (F.classify (F.finally (lbl "a")));
  check cls "general" F.General (F.classify (F.infinitely_often (lbl "a")));
  (* classification is of the NNF: a negated F is a safety property *)
  check cls "negated cosafety" F.Safety (F.classify (F.Not (F.finally (lbl "a"))))

let test_acceptance_sets () =
  check Alcotest.int "GF a" 1
    (Ltl.Buchi.num_acceptance_sets (F.nnf (F.infinitely_often (lbl "a"))));
  check Alcotest.int "no untils" 0
    (Ltl.Buchi.num_acceptance_sets (F.nnf (F.globally (lbl "a"))));
  check Alcotest.int "two untils" 2
    (Ltl.Buchi.num_acceptance_sets
       (F.nnf (F.And (F.finally (lbl "a"), F.finally (lbl "b")))))

let tests =
  ( "ltl",
    [
      Alcotest.test_case "classifier" `Quick test_classify;
      Alcotest.test_case "acceptance sets" `Quick test_acceptance_sets;
      Alcotest.test_case "weak fairness" `Quick test_weak_fairness;
      Alcotest.test_case "response fairness" `Quick test_response_fairness;
      Alcotest.test_case "often fairness" `Quick test_often_fairness;
      Alcotest.test_case "stutter policies vs CTL" `Quick test_stutter_policies;
      Alcotest.test_case "CTL/LTL agreement on binary model" `Quick
        test_ctl_ltl_agreement_shipped;
      Alcotest.test_case "binary liveness gate" `Quick test_binary_liveness_gate;
      QCheck_alcotest.to_alcotest prop_pipeline_vs_reference;
      QCheck_alcotest.to_alcotest prop_nnf_preserves_semantics;
      QCheck_alcotest.to_alcotest prop_engines_agree;
      QCheck_alcotest.to_alcotest prop_engines_agree_pa;
      QCheck_alcotest.to_alcotest prop_safety_fragment_vs_forbidden;
    ] )
