(* The location-sensitive LU analysis: backward-fixpoint units (guards
   and invariants contribute at their source, resets kill propagation,
   clock reads pin to the cap), the soundness pins (per-location bounds
   never exceed the global ones on any shipped model; fischer-broken's
   dense-only mutex violation survives location extrapolation), and the
   qcheck parity harness — on random closed-constraint networks the
   zone verdict under location LU must equal the one under global LU
   and the discrete verdict, location-LU counterexamples must replay
   discretely, and the location-LU zone graph must never be larger. *)

let check = Alcotest.check

module M = Ta.Model
module E = Ta.Expr
module S = Ta.Semantics

let net ?(vars = []) ?(clocks = []) ?(chans = []) automata =
  { M.vars; clocks; chans; automata }

let auto ?(init = "L0") name locations edges =
  { M.auto_name = name; locations; edges; init_loc = init }

let one_clock ?(cap = 5) () = [ { M.clock_name = "k"; cap } ]

let bounds_at m ~loc =
  let t = Lubounds.analyze m in
  Lubounds.bounds t ~auto:"A" ~loc ~clock:"k"

let pair = Alcotest.(pair int int)

let discrete_reaches ?(max_states = 50_000) t goal =
  match Mc.Explore.find ~max_states ~goal (S.system t) with
  | Mc.Explore.Reached _ -> Some true
  | Mc.Explore.Unreachable -> Some false
  | Mc.Explore.Bound_hit _ | Mc.Explore.Exhausted _ -> None

let zone_reaches ?(max_states = 50_000) z goal =
  match Zone.Reach.find ~max_states z ~goal with
  | Mc.Explore.Reached w -> Some (true, Some w.Mc.Explore.trace)
  | Mc.Explore.Unreachable -> Some (false, None)
  | Mc.Explore.Bound_hit _ | Mc.Explore.Exhausted _ -> None

(* --- backward-fixpoint units ---------------------------------------- *)

(* guard constants attach at the edge's source: k >= 2 is a lower
   bound, k <= 4 an upper one, k = 3 both *)
let test_guard_contributions () =
  let m guard =
    net ~clocks:(one_clock ())
      [
        auto "A"
          [ M.loc "L0"; M.loc "L1" ]
          [ M.edge ~src:"L0" ~dst:"L1" ~guard ~act:"go" () ];
      ]
  in
  check pair "lower atom" (2, -1) (bounds_at (m E.(clk "k" >= i 2)) ~loc:"L0");
  check pair "upper atom" (-1, 4) (bounds_at (m E.(clk "k" <= i 4)) ~loc:"L0");
  check pair "equality is both" (3, 3) (bounds_at (m E.(clk "k" = i 3)) ~loc:"L0");
  check pair "target location unconstrained" (-1, -1)
    (bounds_at (m E.(clk "k" >= i 2)) ~loc:"L1")

let test_invariant_contributes_and_propagates () =
  (* L0 -> L1 (no reset), invariant k <= 3 at L1: the bound is live at
     L1 and propagates backward to L0 *)
  let m =
    net ~clocks:(one_clock ())
      [
        auto "A"
          [ M.loc "L0"; M.loc ~invariant:E.(clk "k" <= i 3) "L1" ]
          [ M.edge ~src:"L0" ~dst:"L1" ~act:"go" () ];
      ]
  in
  check pair "at the invariant" (-1, 3) (bounds_at m ~loc:"L1");
  check pair "propagated backward" (-1, 3) (bounds_at m ~loc:"L0")

let test_reset_kills_propagation () =
  (* L0 -[reset k]-> L1 -[k <= 2]-> L2: the bound is live at L1 but the
     reset stops it from reaching L0 *)
  let m =
    net ~clocks:(one_clock ())
      [
        auto "A"
          [ M.loc "L0"; M.loc "L1"; M.loc "L2" ]
          [
            M.edge ~src:"L0" ~dst:"L1" ~updates:[ M.Reset "k" ] ~act:"a" ();
            M.edge ~src:"L1" ~dst:"L2" ~guard:E.(clk "k" <= i 2) ~act:"b" ();
          ];
      ]
  in
  check pair "live before the guard" (-1, 2) (bounds_at m ~loc:"L1");
  check pair "reset kills backward flow" (-1, -1) (bounds_at m ~loc:"L0");
  check pair "nothing past the guard" (-1, -1) (bounds_at m ~loc:"L2")

let test_clock_read_pins_to_cap () =
  (* an update reading the clock observes its exact value, so both
     bounds at the source are the declared cap *)
  let m =
    net
      ~vars:[ M.scalar "x" 0 ]
      ~clocks:(one_clock ~cap:3 ())
      [
        auto "A"
          [ M.loc "L0"; M.loc "L1" ]
          [
            M.edge ~src:"L0" ~dst:"L1"
              ~updates:[ M.Assign (M.Scalar "x", E.clk "k") ]
              ~act:"read" ();
          ];
      ]
  in
  check pair "read pins L and U to the cap" (3, 3) (bounds_at m ~loc:"L0")

let test_cycle_fixpoint () =
  (* a loop L0 <-> L1 with the guard on the back edge: both locations
     carry the bound (the fixpoint closes the cycle) *)
  let m =
    net ~clocks:(one_clock ())
      [
        auto "A"
          [ M.loc "L0"; M.loc "L1" ]
          [
            M.edge ~src:"L0" ~dst:"L1" ~act:"a" ();
            M.edge ~src:"L1" ~dst:"L0" ~guard:E.(clk "k" >= i 4) ~act:"b" ();
          ];
      ]
  in
  check pair "on the guard source" (4, -1) (bounds_at m ~loc:"L1");
  check pair "around the cycle" (4, -1) (bounds_at m ~loc:"L0")

let test_diagonal_pins_to_global () =
  (* a diagonal guard is outside the fragment: both clocks are pinned
     to their global bounds everywhere (here bumped to the caps) *)
  let m =
    net
      ~clocks:
        [ { M.clock_name = "k"; cap = 5 }; { M.clock_name = "l"; cap = 7 } ]
      [
        auto "A"
          [ M.loc "L0"; M.loc "L1" ]
          [
            M.edge ~src:"L0" ~dst:"L1" ~guard:E.(clk "k" <= clk "l") ~act:"d" ();
          ];
      ]
  in
  let t = Lubounds.analyze m in
  Alcotest.(check (list string)) "both clocks pinned" [ "k"; "l" ]
    (List.sort compare (Lubounds.pinned t));
  List.iter
    (fun loc ->
      check pair ("k pinned at " ^ loc) (Lubounds.global_bounds t "k")
        (Lubounds.bounds t ~auto:"A" ~loc ~clock:"k"))
    [ "L0"; "L1" ]

(* --- soundness pins on the shipped models --------------------------- *)

let variant_models =
  List.concat_map
    (fun v ->
      let p = Heartbeat.Params.make ~tmin:1 ~tmax:2 ~n:2 () in
      [
        ( Heartbeat.Ta_models.variant_name v,
          Heartbeat.Ta_models.build ~with_r1_monitors:true v p );
      ])
    Heartbeat.Ta_models.all_variants

(* per-location bounds never exceed the global ones — the invariant the
   zone engine's monotonicity rests on *)
let test_location_bounds_below_global () =
  List.iter
    (fun (name, model) ->
      let t = Lubounds.analyze model in
      List.iter
        (fun (auto, locs) ->
          List.iter
            (fun (loc, row) ->
              List.iter
                (fun (clock, l, u) ->
                  let gl, gu = Lubounds.global_bounds t clock in
                  if l > gl || u > gu then
                    Alcotest.failf "%s: %s.%s clock %s (%d,%d) above global (%d,%d)"
                      name auto loc clock l u gl gu)
                row)
            locs)
        (Lubounds.tables t))
    variant_models

(* the tables Zone.Sym serves must be the analysis's own, and its
   global bounds must agree with the analysis maxima *)
let test_zone_serves_analysis_tables () =
  List.iter
    (fun (name, model) ->
      let z = Zone.Sym.compile ~lu:Zone.Sym.Location model in
      let t = Lubounds.analyze model in
      Alcotest.(check bool) (name ^ ": mode recorded") true
        (Zone.Sym.lu_mode z = Zone.Sym.Location);
      List.iter2
        (fun (za, zlocs) (ta, tlocs) ->
          check Alcotest.string (name ^ ": automaton order") ta za;
          List.iter2
            (fun (zl, zrow) (tl, trow) ->
              check Alcotest.string (name ^ ": location order") tl zl;
              List.iter2
                (fun (zc, zlo, zup) (tc, tlo, tup) ->
                  if (zc, zlo, zup) <> (tc, tlo, tup) then
                    Alcotest.failf "%s: %s.%s table drift (%s %d %d vs %s %d %d)"
                      name za zl zc zlo zup tc tlo tup)
                zrow trow)
            zlocs tlocs)
        (Zone.Sym.lu_tables z) (Lubounds.tables t);
      List.iter
        (fun (clock, l, u) ->
          check pair (name ^ ": global " ^ clock)
            (Lubounds.global_bounds t clock)
            (l, u))
        (Zone.Sym.lu_bounds z))
    variant_models

(* fischer-broken's mutex violation exists only in dense time; the
   sharper location extrapolation must not lose it *)
let test_fischer_broken_still_found () =
  match Fc.find "fischer-broken" with
  | None -> Alcotest.fail "fischer-broken missing from the registry"
  | Some s -> (
      let z = Zone.Sym.compile ~lu:Zone.Sym.Location s.Fc.model in
      let goal = Zone.Sym.bad_of z (Fc.bad_predicate s (Zone.Sym.net z)) in
      match Zone.Reach.find z ~goal with
      | Mc.Explore.Reached w ->
          (* and the violation replays in the discrete semantics of the
             same model?  No: it is dense-only.  The certificate is the
             zone trace itself being non-empty. *)
          Alcotest.(check bool) "non-empty trace" true
            (w.Mc.Explore.trace <> [])
      | Mc.Explore.Unreachable ->
          Alcotest.fail "location LU lost the fischer-broken violation"
      | _ -> Alcotest.fail "bound hit")

(* the whole FC suite: verdict parity between both LU modes, and the
   location-LU zone graph never larger *)
let test_fc_parity_both_modes () =
  List.iter
    (fun (s : Fc.spec) ->
      let verdict lu =
        let z = Zone.Sym.compile ~lu s.Fc.model in
        let goal = Zone.Sym.bad_of z (Fc.bad_predicate s (Zone.Sym.net z)) in
        match Zone.Reach.find z ~goal with
        | Mc.Explore.Unreachable -> true
        | Mc.Explore.Reached _ -> false
        | _ -> Alcotest.failf "%s: bound hit" s.Fc.fc_name
      in
      Alcotest.(check bool)
        (s.Fc.fc_name ^ ": global verdict")
        s.Fc.safe (verdict Zone.Sym.Global);
      Alcotest.(check bool)
        (s.Fc.fc_name ^ ": location verdict")
        s.Fc.safe
        (verdict Zone.Sym.Location);
      let count lu =
        let z = Zone.Sym.compile ~lu s.Fc.model in
        let n, complete = Zone.Reach.count ~subsume:true z in
        Alcotest.(check bool) (s.Fc.fc_name ^ ": complete") true complete;
        n
      in
      let g = count Zone.Sym.Global and l = count Zone.Sym.Location in
      if l > g then
        Alcotest.failf "%s: location LU stored more zones (%d > %d)"
          s.Fc.fc_name l g)
    Fc.all

(* fischer is the headline case: the clock is reset before every
   comparison on the way back to Idle, so location bounds actually bite
   and the zone graph strictly shrinks already at n = 2 *)
let test_fischer_strictly_fewer_zones () =
  let model = Fc.fischer () in
  let count lu =
    fst (Zone.Reach.count ~subsume:true (Zone.Sym.compile ~lu model))
  in
  let g = count Zone.Sym.Global and l = count Zone.Sym.Location in
  Alcotest.(check bool)
    (Printf.sprintf "location %d < global %d" l g)
    true (l < g)

(* --- discrete per-location capping ---------------------------------- *)

(* per-location delay capping changes which clock valuations are
   stored (clamping down on entry to a low-bound location can even
   create valuations the plain engine never holds), but every
   location/variable observation is preserved: the bounds are
   backward-closed, so values above the bound satisfy exactly the same
   future guards until the next reset.  The verdicts must agree. *)
let test_discrete_loc_caps_verdicts () =
  let v = Heartbeat.Ta_models.Binary in
  let p = Heartbeat.Params.make ~tmin:1 ~tmax:2 ~n:2 () in
  List.iter
    (fun r ->
      let model =
        Heartbeat.Ta_models.build
          ~with_r1_monitors:(Heartbeat.Requirements.needs_monitors r)
          v p
      in
      let plain = S.compile model in
      let lub = Lubounds.analyze model in
      let capped =
        S.with_loc_caps (S.compile model) (Lubounds.caps_for plain model lub)
      in
      let verdict t =
        discrete_reaches ~max_states:5_000_000 t
          (Heartbeat.Requirements.bad_state v p t r)
      in
      match (verdict plain, verdict capped) with
      | Some a, Some b ->
          if a <> b then
            Alcotest.failf "%s: plain %b, location-capped %b"
              (Heartbeat.Requirements.name r)
              a b
      | _ ->
          Alcotest.failf "%s: state bound hit" (Heartbeat.Requirements.name r))
    Heartbeat.Requirements.all

let test_with_loc_caps_validates () =
  let _, model = List.hd variant_models in
  let t = S.compile model in
  match S.with_loc_caps t [| [| [| 0 |] |] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mis-shaped table must be rejected"

(* --- the qcheck parity harness -------------------------------------- *)

(* one random model, one predicate: discrete = zone-global =
   zone-location verdicts, location counterexamples replay discretely,
   and the location zone graph is never larger than the global one *)
let agree_three_way model (pred : S.t -> S.config -> bool) =
  let td = S.compile model in
  let zg = Zone.Sym.compile model in
  let zl = Zone.Sym.compile ~lu:Zone.Sym.Location model in
  let d = discrete_reaches td (pred td) in
  let g = zone_reaches zg (Zone.Sym.bad_of zg (pred (Zone.Sym.net zg))) in
  let l = zone_reaches zl (Zone.Sym.bad_of zl (pred (Zone.Sym.net zl))) in
  match (d, g, l) with
  | Some dr, Some (gr, _), Some (lr, ltrace) ->
      if dr <> gr || dr <> lr then
        QCheck.Test.fail_reportf
          "verdict mismatch: discrete %b, zone global %b, zone location %b" dr
          gr lr;
      (match ltrace with
      | Some trace ->
          if
            not
              (Zone.Reach.guided_replay (S.system td) ~trace ~goal:(pred td))
          then
            QCheck.Test.fail_report
              "location-LU counterexample does not replay discretely"
      | None -> ());
      let ng, cg = Zone.Reach.count ~max_states:50_000 ~subsume:true zg in
      let nl, cl = Zone.Reach.count ~max_states:50_000 ~subsume:true zl in
      if cg && cl && nl > ng then
        QCheck.Test.fail_reportf "location LU stored more zones (%d > %d)" nl
          ng;
      true
  | _ -> true (* bound hit: nothing to compare *)

let prop_three_way_random =
  QCheck.Test.make
    ~name:"location LU = global LU = discrete on random closed TA" ~count:120
    Test_zone.zone_random_network (fun model ->
      let last =
        Printf.sprintf "L%d"
          (List.length (List.nth model.M.automata 0).M.locations - 1)
      in
      let pred t =
        let in_last = S.loc_is t ~auto:"A" ~loc:last in
        let x = S.var t "x" in
        fun c -> in_last c && x c = 1
      in
      agree_three_way model pred)

(* the shipped variants under location LU, all requirements: same
   verdicts as the discrete engine *)
let variant_parity_location ?(n = 2) variant () =
  let p = Heartbeat.Params.make ~tmin:1 ~tmax:2 ~n () in
  List.iter
    (fun r ->
      let model =
        Heartbeat.Ta_models.build
          ~with_r1_monitors:(Heartbeat.Requirements.needs_monitors r)
          variant p
      in
      let td = S.compile model in
      let zl = Zone.Sym.compile ~lu:Zone.Sym.Location model in
      let pred t = Heartbeat.Requirements.bad_state variant p t r in
      let d = discrete_reaches ~max_states:5_000_000 td (pred td) in
      let l =
        zone_reaches ~max_states:5_000_000 zl
          (Zone.Sym.bad_of zl (pred (Zone.Sym.net zl)))
      in
      match (d, l) with
      | Some dr, Some (lr, _) ->
          if dr <> lr then
            Alcotest.failf "%s/%s: discrete %b, zone location %b"
              (Heartbeat.Ta_models.variant_name variant)
              (Heartbeat.Requirements.name r)
              dr lr
      | _ ->
          Alcotest.failf "%s/%s: state bound hit"
            (Heartbeat.Ta_models.variant_name variant)
            (Heartbeat.Requirements.name r))
    Heartbeat.Requirements.all

let test_memo_hits () =
  let _, model = List.hd variant_models in
  let l0, _ = Lubounds.cache_stats () in
  let t1 = Lubounds.analyze_cached model in
  let t2 = Lubounds.analyze_cached model in
  let l1, h1 = Lubounds.cache_stats () in
  Alcotest.(check bool) "two lookups recorded" true (l1 >= l0 + 2);
  Alcotest.(check bool) "second lookup hits" true (h1 > 0);
  Alcotest.(check bool) "same table" true (t1 == t2)

let tests =
  ( "lubounds",
    [
      Alcotest.test_case "guard contributions" `Quick test_guard_contributions;
      Alcotest.test_case "invariant contributes and propagates" `Quick
        test_invariant_contributes_and_propagates;
      Alcotest.test_case "reset kills propagation" `Quick
        test_reset_kills_propagation;
      Alcotest.test_case "clock read pins to cap" `Quick
        test_clock_read_pins_to_cap;
      Alcotest.test_case "cycle fixpoint" `Quick test_cycle_fixpoint;
      Alcotest.test_case "diagonal pins to global" `Quick
        test_diagonal_pins_to_global;
      Alcotest.test_case "location bounds below global (all variants)" `Quick
        test_location_bounds_below_global;
      Alcotest.test_case "zone engine serves the analysis tables" `Quick
        test_zone_serves_analysis_tables;
      Alcotest.test_case "fischer-broken violation survives location LU"
        `Quick test_fischer_broken_still_found;
      Alcotest.test_case "fc suite parity in both LU modes" `Quick
        test_fc_parity_both_modes;
      Alcotest.test_case "fischer strictly fewer zones" `Quick
        test_fischer_strictly_fewer_zones;
      Alcotest.test_case "discrete per-location caps keep the verdicts"
        `Quick test_discrete_loc_caps_verdicts;
      Alcotest.test_case "with_loc_caps validates shape" `Quick
        test_with_loc_caps_validates;
      QCheck_alcotest.to_alcotest prop_three_way_random;
      Alcotest.test_case "variant parity under location LU: binary" `Quick
        (variant_parity_location Heartbeat.Ta_models.Binary);
      Alcotest.test_case "variant parity under location LU: dynamic" `Quick
        (variant_parity_location ~n:1 Heartbeat.Ta_models.Dynamic);
      Alcotest.test_case "analysis memoised" `Quick test_memo_hits;
    ] )
