(* Tests for the LTS substrate: graph construction, queries, reductions
   and dot export. *)

let check = Alcotest.check
let diamond = [ (0, "a", 1); (0, "b", 2); (1, "c", 3); (2, "c", 3) ]

let mk ?(initial = 0) ?(n = 4) trans =
  Lts.Graph.make ~num_states:n ~initial trans

let test_make_valid () =
  let g = mk diamond in
  check Alcotest.int "states" 4 (Lts.Graph.num_states g);
  check Alcotest.int "transitions" 4 (Lts.Graph.num_transitions g);
  check Alcotest.int "initial" 0 (Lts.Graph.initial g)

let test_make_out_of_range () =
  Alcotest.check_raises "bad target"
    (Invalid_argument "Lts.Graph.make: state 7 out of range") (fun () ->
      ignore (mk [ (0, "a", 7) ]))

let test_successors_order () =
  let g = mk diamond in
  check
    Alcotest.(list (pair string int))
    "succ 0"
    [ ("a", 1); ("b", 2) ]
    (Lts.Graph.successors g 0);
  check Alcotest.(list (pair string int)) "succ 3" [] (Lts.Graph.successors g 3)

let test_labels_dedup () =
  let g = mk diamond in
  check Alcotest.(list string) "labels" [ "a"; "b"; "c" ] (Lts.Graph.labels g)

let test_deadlocks () =
  let g = mk diamond in
  check Alcotest.(list int) "deadlocks" [ 3 ] (Lts.Graph.deadlocks g)

let test_reachable () =
  let g = mk ~n:5 diamond in
  let r = Lts.Graph.reachable g in
  check Alcotest.(list bool) "reachable" [ true; true; true; true; false ]
    (Array.to_list r)

let test_restrict () =
  let g = mk ~n:6 diamond in
  let g', map = Lts.Graph.restrict_to_reachable g in
  check Alcotest.int "restricted states" 4 (Lts.Graph.num_states g');
  check Alcotest.int "dropped" (-1) map.(5);
  check Alcotest.int "transitions kept" 4 (Lts.Graph.num_transitions g')

let test_map_labels () =
  let g = mk diamond in
  let g' = Lts.Graph.map_labels String.uppercase_ascii g in
  check Alcotest.(list string) "mapped" [ "A"; "B"; "C" ] (Lts.Graph.labels g')

let test_trace_to () =
  let g = mk diamond in
  (match Lts.Graph.trace_to g (fun s -> s = 3) with
  | Some w -> check Alcotest.int "shortest length" 2 (List.length w)
  | None -> Alcotest.fail "expected a trace");
  check Alcotest.bool "unreachable" true
    (Lts.Graph.trace_to (mk ~n:5 diamond) (fun s -> s = 4) = None);
  check Alcotest.bool "initial goal" true
    (Lts.Graph.trace_to g (fun s -> s = 0) = Some [])

let test_has_trace () =
  let g = mk diamond in
  let eq = String.equal in
  check Alcotest.bool "a.c" true (Lts.Graph.has_trace g ~eq [ "a"; "c" ]);
  check Alcotest.bool "b.c" true (Lts.Graph.has_trace g ~eq [ "b"; "c" ]);
  check Alcotest.bool "c first" false (Lts.Graph.has_trace g ~eq [ "c" ]);
  check Alcotest.bool "empty" true (Lts.Graph.has_trace g ~eq [])

let test_fold () =
  let g = mk diamond in
  let total = Lts.Graph.fold_transitions (fun _ _ _ n -> n + 1) g 0 in
  check Alcotest.int "fold counts" 4 total

(* --- minimisation --- *)

let test_strong_merges_equivalent () =
  (* Two branches with identical futures collapse. *)
  let g = mk diamond in
  let q, map = Lts.Minimize.strong g in
  check Alcotest.int "quotient size" 3 (Lts.Graph.num_states q);
  check Alcotest.int "1 ~ 2" map.(2) map.(1)

let test_strong_keeps_distinct () =
  let g = mk [ (0, "a", 1); (0, "b", 2); (1, "c", 3); (2, "d", 3) ] in
  let q, _ = Lts.Minimize.strong g in
  check Alcotest.int "no merge" 4 (Lts.Graph.num_states q)

let test_strong_self_loop () =
  (* An infinite 'a' chain is bisimilar to a single 'a' self-loop. *)
  let chain =
    Lts.Graph.make ~num_states:5 ~initial:0
      [ (0, "a", 1); (1, "a", 2); (2, "a", 3); (3, "a", 4); (4, "a", 0) ]
  in
  let q, _ = Lts.Minimize.strong chain in
  check Alcotest.int "loop collapses" 1 (Lts.Graph.num_states q)

let test_determinize_hides_tau () =
  let g =
    Lts.Graph.make ~num_states:4 ~initial:0
      [ (0, "tau", 1); (1, "a", 2); (0, "a", 3) ]
  in
  let d = Lts.Minimize.determinize ~hidden:(String.equal "tau") g in
  check Alcotest.(list string) "only visible" [ "a" ] (Lts.Graph.labels d);
  check Alcotest.bool "a possible" true
    (Lts.Graph.has_trace d ~eq:String.equal [ "a" ]);
  check Alcotest.bool "aa impossible" false
    (Lts.Graph.has_trace d ~eq:String.equal [ "a"; "a" ])

let test_weak_trace_reduction () =
  (* tau.a + a is weak-trace equivalent to a. *)
  let g =
    Lts.Graph.make ~num_states:4 ~initial:0
      [ (0, "tau", 1); (1, "a", 2); (0, "a", 3) ]
  in
  let w = Lts.Minimize.weak_trace ~hidden:(String.equal "tau") g in
  check Alcotest.int "two states" 2 (Lts.Graph.num_states w);
  check Alcotest.int "one transition" 1 (Lts.Graph.num_transitions w)

let test_dot_output () =
  let g = mk diamond in
  let s = Lts.Dot.to_string ~pp_label:Format.pp_print_string g in
  check Alcotest.bool "digraph" true
    (String.length s > 0 && String.sub s 0 7 = "digraph");
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "initial doublecircle" true (has "doublecircle");
  check Alcotest.bool "edge label" true (has "label=\"a\"")

(* --- equivalence --- *)

let test_equiv_basic () =
  let g1 =
    Lts.Graph.make ~num_states:2 ~initial:0 [ (0, "a", 1); (1, "a", 0) ]
  in
  let g2 = Lts.Graph.make ~num_states:1 ~initial:0 [ (0, "a", 0) ] in
  check Alcotest.bool "a-loop ~ a-cycle" true (Lts.Equiv.strong_bisimilar g1 g2);
  let g3 = Lts.Graph.make ~num_states:2 ~initial:0 [ (0, "b", 1) ] in
  check Alcotest.bool "different labels" false
    (Lts.Equiv.strong_bisimilar g1 g3)

let test_equiv_branching () =
  (* a.(b + c) vs a.b + a.c: trace equivalent but not bisimilar. *)
  let branching =
    Lts.Graph.make ~num_states:4 ~initial:0
      [ (0, "a", 1); (1, "b", 2); (1, "c", 3) ]
  in
  let split =
    Lts.Graph.make ~num_states:5 ~initial:0
      [ (0, "a", 1); (0, "a", 2); (1, "b", 3); (2, "c", 4) ]
  in
  check Alcotest.bool "not bisimilar" false
    (Lts.Equiv.strong_bisimilar branching split);
  check Alcotest.bool "trace equivalent" true
    (Lts.Equiv.weak_trace_equivalent ~hidden:(fun _ -> false) branching split)

let test_equiv_weak () =
  (* tau.a ~weak~ a *)
  let with_tau =
    Lts.Graph.make ~num_states:3 ~initial:0 [ (0, "tau", 1); (1, "a", 2) ]
  in
  let without = Lts.Graph.make ~num_states:2 ~initial:0 [ (0, "a", 1) ] in
  let hidden = String.equal "tau" in
  check Alcotest.bool "weak trace equivalent" true
    (Lts.Equiv.weak_trace_equivalent ~hidden with_tau without);
  check Alcotest.bool "not strongly bisimilar" false
    (Lts.Equiv.strong_bisimilar with_tau without)

(* --- property-based --- *)

let random_lts =
  QCheck.make ~print:(fun (n, edges) ->
      Printf.sprintf "%d states, %d edges" n (List.length edges))
    QCheck.Gen.(
      sized (fun size ->
          let n = max 1 (min 12 (size + 1)) in
          let edge =
            map3 (fun s l t -> (s, l, t)) (int_bound (n - 1))
              (map (fun i -> String.make 1 (Char.chr (97 + i))) (int_bound 2))
              (int_bound (n - 1))
          in
          map (fun es -> (n, es)) (list_size (int_bound (3 * n)) edge)))

let prop_weak_trace_reflexive =
  QCheck.Test.make ~name:"weak-trace equivalence is reflexive" ~count:100
    random_lts (fun (n, edges) ->
      let g = Lts.Graph.make ~num_states:n ~initial:0 edges in
      Lts.Equiv.weak_trace_equivalent ~hidden:(fun l -> l = "a") g g)

let prop_weak_trace_tau_insertion =
  (* Splitting every edge u -l-> v into u -tau-> w -l-> v inserts one
     hidden step before each visible one; the weak traces are unchanged. *)
  QCheck.Test.make ~name:"weak traces invariant under tau-insertion" ~count:100
    random_lts (fun (n, edges) ->
      let g = Lts.Graph.make ~num_states:n ~initial:0 edges in
      let edges' =
        List.concat
          (List.mapi
             (fun k (u, l, v) ->
               let w = n + k in
               [ (u, "tau", w); (w, l, v) ])
             edges)
      in
      let g' =
        Lts.Graph.make ~num_states:(n + List.length edges) ~initial:0 edges'
      in
      Lts.Equiv.weak_trace_equivalent ~hidden:(fun l -> l = "tau") g g')

let prop_minimize_idempotent =
  QCheck.Test.make ~name:"strong minimisation is idempotent" ~count:200
    random_lts (fun (n, edges) ->
      let g = Lts.Graph.make ~num_states:n ~initial:0 edges in
      let q1, _ = Lts.Minimize.strong g in
      let q2, _ = Lts.Minimize.strong q1 in
      Lts.Graph.num_states q2 = Lts.Graph.num_states q1)

let prop_minimize_shrinks =
  QCheck.Test.make ~name:"quotient is no larger" ~count:200 random_lts
    (fun (n, edges) ->
      let g = Lts.Graph.make ~num_states:n ~initial:0 edges in
      let q, _ = Lts.Minimize.strong g in
      Lts.Graph.num_states q <= Lts.Graph.num_states g)

let prop_trace_to_is_a_trace =
  QCheck.Test.make ~name:"trace_to yields an actual trace" ~count:200
    random_lts (fun (n, edges) ->
      let g = Lts.Graph.make ~num_states:n ~initial:0 edges in
      let goal s = s = n - 1 in
      match Lts.Graph.trace_to g goal with
      | None -> true
      | Some w -> Lts.Graph.has_trace g ~eq:String.equal w)

let prop_determinize_preserves_traces =
  QCheck.Test.make ~name:"determinisation preserves visible traces"
    ~count:100 random_lts (fun (n, edges) ->
      let g = Lts.Graph.make ~num_states:n ~initial:0 edges in
      let hidden = String.equal "a" in
      let d = Lts.Minimize.determinize ~hidden g in
      (* Any short visible word has the same status in both. *)
      let words = [ [ "b" ]; [ "c" ]; [ "b"; "b" ]; [ "b"; "c" ]; [ "c"; "b" ] ] in
      List.for_all
        (fun w ->
          (* weak trace in g: interleave arbitrary 'a's — approximate by
             checking in the determinised LTS of g twice. *)
          Lts.Graph.has_trace d ~eq:String.equal w
          = Lts.Graph.has_trace
              (Lts.Minimize.weak_trace ~hidden g)
              ~eq:String.equal w)
        words)

let prop_quotient_bisimilar =
  QCheck.Test.make ~name:"quotient is bisimilar to the original" ~count:150
    random_lts (fun (n, edges) ->
      let g = Lts.Graph.make ~num_states:n ~initial:0 edges in
      let q, _ = Lts.Minimize.strong g in
      Lts.Equiv.strong_bisimilar g q)

let prop_weak_trace_reduction_equivalent =
  QCheck.Test.make ~name:"weak-trace reduction preserves weak traces"
    ~count:150 random_lts (fun (n, edges) ->
      let g = Lts.Graph.make ~num_states:n ~initial:0 edges in
      let hidden = String.equal "a" in
      Lts.Equiv.weak_trace_equivalent ~hidden g
        (Lts.Minimize.weak_trace ~hidden g))

(* --- reverse edges and strongly connected components --- *)

let test_predecessors () =
  let g = mk diamond in
  let preds = Lts.Graph.predecessors g in
  check Alcotest.(list int) "into 0" [] preds.(0);
  check Alcotest.(list int) "into 1" [ 0 ] preds.(1);
  check Alcotest.(list int) "into 3" [ 1; 2 ] preds.(3);
  (* one entry per transition: parallel edges appear twice *)
  let m = mk ~n:2 [ (0, "a", 1); (0, "b", 1) ] in
  check Alcotest.(list int) "multi-edge" [ 0; 0 ] (Lts.Graph.predecessors m).(1)

let test_scc_basic () =
  (* A 3-cycle feeding a deadlock state, plus an unreachable state: three
     components, numbered in reverse topological order. *)
  let g =
    mk ~n:5 [ (0, "a", 1); (1, "b", 2); (2, "c", 0); (2, "d", 3) ]
  in
  let count, comp = Lts.Graph.scc g in
  check Alcotest.int "count" 3 count;
  check Alcotest.bool "cycle is one component" true
    (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  check Alcotest.bool "sink separate" true (comp.(3) <> comp.(0));
  check Alcotest.bool "unreachable covered" true
    (comp.(4) <> comp.(0) && comp.(4) <> comp.(3));
  (* reverse topological: the sink's component completes first *)
  check Alcotest.bool "reverse topological" true (comp.(3) < comp.(0))

(* Oracle: mutual reachability by transitive closure. *)
let naive_reach n edges =
  let r = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    r.(i).(i) <- true
  done;
  List.iter (fun (u, _, v) -> r.(u).(v) <- true) edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if r.(i).(k) && r.(k).(j) then r.(i).(j) <- true
      done
    done
  done;
  r

let prop_scc_is_mutual_reachability =
  QCheck.Test.make ~name:"scc partition = mutual reachability" ~count:200
    random_lts (fun (n, edges) ->
      let g = Lts.Graph.make ~num_states:n ~initial:0 edges in
      let _, comp = Lts.Graph.scc g in
      let r = naive_reach n edges in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if (comp.(i) = comp.(j)) <> (r.(i).(j) && r.(j).(i)) then ok := false
        done
      done;
      (* and the numbering is reverse topological *)
      List.iter
        (fun (u, _, v) -> if comp.(u) <> comp.(v) && comp.(v) >= comp.(u) then ok := false)
        edges;
      !ok)

let prop_predecessors_invert_successors =
  QCheck.Test.make ~name:"predecessors is the reverse-edge table" ~count:200
    random_lts (fun (n, edges) ->
      let g = Lts.Graph.make ~num_states:n ~initial:0 edges in
      let preds = Lts.Graph.predecessors g in
      let expected = Array.make n 0 in
      List.iter (fun (_, _, v) -> expected.(v) <- expected.(v) + 1) edges;
      let sorted l = List.sort compare l in
      Array.for_all (fun b -> b)
        (Array.init n (fun v ->
             List.length preds.(v) = expected.(v)
             && sorted preds.(v)
                = sorted
                    (List.filter_map
                       (fun (u, _, v') -> if v' = v then Some u else None)
                       edges))))

let tests =
  ( "lts",
    [
      Alcotest.test_case "make valid" `Quick test_make_valid;
      Alcotest.test_case "make rejects bad indices" `Quick test_make_out_of_range;
      Alcotest.test_case "successors in order" `Quick test_successors_order;
      Alcotest.test_case "labels deduplicated" `Quick test_labels_dedup;
      Alcotest.test_case "deadlocks" `Quick test_deadlocks;
      Alcotest.test_case "reachable" `Quick test_reachable;
      Alcotest.test_case "restrict to reachable" `Quick test_restrict;
      Alcotest.test_case "map labels" `Quick test_map_labels;
      Alcotest.test_case "trace_to shortest" `Quick test_trace_to;
      Alcotest.test_case "has_trace" `Quick test_has_trace;
      Alcotest.test_case "fold_transitions" `Quick test_fold;
      Alcotest.test_case "strong merges equivalent states" `Quick
        test_strong_merges_equivalent;
      Alcotest.test_case "strong keeps distinct states" `Quick
        test_strong_keeps_distinct;
      Alcotest.test_case "strong collapses a-loop" `Quick test_strong_self_loop;
      Alcotest.test_case "determinize hides tau" `Quick test_determinize_hides_tau;
      Alcotest.test_case "weak-trace reduction" `Quick test_weak_trace_reduction;
      Alcotest.test_case "dot export" `Quick test_dot_output;
      QCheck_alcotest.to_alcotest prop_minimize_idempotent;
      QCheck_alcotest.to_alcotest prop_minimize_shrinks;
      QCheck_alcotest.to_alcotest prop_trace_to_is_a_trace;
      QCheck_alcotest.to_alcotest prop_determinize_preserves_traces;
      Alcotest.test_case "equivalence basics" `Quick test_equiv_basic;
      Alcotest.test_case "bisimulation vs traces" `Quick test_equiv_branching;
      Alcotest.test_case "weak equivalence" `Quick test_equiv_weak;
      QCheck_alcotest.to_alcotest prop_quotient_bisimilar;
      QCheck_alcotest.to_alcotest prop_weak_trace_reduction_equivalent;
      QCheck_alcotest.to_alcotest prop_weak_trace_reflexive;
      QCheck_alcotest.to_alcotest prop_weak_trace_tau_insertion;
      Alcotest.test_case "predecessors" `Quick test_predecessors;
      Alcotest.test_case "scc basics" `Quick test_scc_basic;
      QCheck_alcotest.to_alcotest prop_scc_is_mutual_reachability;
      QCheck_alcotest.to_alcotest prop_predecessors_invert_successors;
    ] )
