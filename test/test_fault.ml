(* Tests for the adversarial fault-injection subsystem: Sim.Fault
   schedules, the requirement monitors, and the campaign driver. *)

let check = Alcotest.check

module F = Sim.Fault
module H = Heartbeat

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* --- schedule validation and rendering --- *)

let test_validate () =
  F.validate
    [ F.crash ~at:1.0 0; F.partition ~at:2.0 ~duration:3.0 [ 1 ] ];
  let rejects what sched =
    match F.validate sched with
    | () -> Alcotest.failf "%s: accepted" what
    | exception Invalid_argument _ -> ()
  in
  rejects "negative time" [ F.crash ~at:(-1.0) 0 ];
  rejects "empty partition" [ F.partition ~at:0.0 ~duration:1.0 [] ];
  rejects "bad probability" [ F.burst ~at:0.0 ~duration:1.0 1.5 ];
  rejects "negative jitter" [ F.jitter ~at:0.0 ~duration:1.0 (-0.1) ];
  rejects "non-positive window"
    [ F.reorder ~at:0.0 ~duration:0.0 0.5 ]

let test_schedule_json () =
  let sched =
    [
      F.crash ~at:2.5 1;
      F.recover ~at:4.0 1;
      F.partition ~at:5.0 ~drop_inflight:true ~duration:2.0 [ 1; 2 ];
      F.burst ~at:8.0 ~duration:1.5 0.75;
    ]
  in
  check Alcotest.string "byte-identical for equal schedules" (F.to_json sched)
    (F.to_json sched);
  let json = F.to_json sched in
  List.iter
    (fun fragment ->
      check Alcotest.bool
        (Printf.sprintf "contains %s" fragment)
        true (contains json fragment))
    [ "\"crash\""; "\"recover\""; "\"partition\""; "\"burst\""; "2.5" ]

(* --- injection hooks on a toy harness --- *)

let test_apply_partition () =
  let e = Sim.Engine.create () in
  let got = ref [] in
  let mk src dst =
    Sim.Net.create e ~delay_lo:0.0 ~delay_hi:0.0
      ~deliver:(fun () -> got := (src, dst, Sim.Engine.now e) :: !got)
      ()
  in
  let l01 = mk 0 1 and l10 = mk 1 0 and l02 = mk 0 2 in
  let link ~src ~dst =
    match (src, dst) with
    | 0, 1 -> Some (Sim.Net.ctl l01)
    | 1, 0 -> Some (Sim.Net.ctl l10)
    | 0, 2 -> Some (Sim.Net.ctl l02)
    | _ -> None
  in
  let log = ref [] in
  F.apply e ~nodes:[ 0; 1; 2 ] ~link
    ~on_crash:(fun _ -> ())
    ~on_recover:(fun _ -> ())
    ~on_apply:(fun at a -> log := (at, a) :: !log)
    [ F.partition ~at:1.0 ~duration:2.0 [ 1 ] ];
  (* Probe each link before, during and after the window. *)
  let probe at =
    ignore
      (Sim.Engine.at e ~time:at (fun () ->
           Sim.Net.send l01 ();
           Sim.Net.send l10 ();
           Sim.Net.send l02 ()))
  in
  probe 0.5;
  probe 2.0;
  probe 3.5;
  Sim.Engine.run e;
  let deliveries = List.rev !got in
  let at time = List.filter (fun (_, _, t) -> t = time) deliveries in
  check Alcotest.int "all links up before" 3 (List.length (at 0.5));
  (* During the partition only the 0<->2 link survives: both directions
     between the isolated node and the rest are cut. *)
  check
    Alcotest.(list (triple int int (float 0.0)))
    "only 0->2 during" [ (0, 2, 2.0) ] (at 2.0);
  check Alcotest.int "healed after" 3 (List.length (at 3.5));
  check Alcotest.int "partition drops counted as dropped" 2
    (Sim.Net.dropped l01 + Sim.Net.dropped l10);
  check Alcotest.int "partition drops are not loss" 0
    (Sim.Net.lost l01 + Sim.Net.lost l10);
  check Alcotest.int "on_apply saw the window start" 1 (List.length !log)

let test_apply_crash_recover () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  F.apply e ~nodes:[ 0; 1 ]
    ~link:(fun ~src:_ ~dst:_ -> None)
    ~on_crash:(fun who -> log := `Crash (who, Sim.Engine.now e) :: !log)
    ~on_recover:(fun who -> log := `Recover (who, Sim.Engine.now e) :: !log)
    [ F.crash ~at:1.0 1; F.recover ~at:2.0 1; F.crash ~at:3.0 0 ];
  Sim.Engine.run e;
  check Alcotest.bool "callbacks in schedule order" true
    (List.rev !log
    = [ `Crash (1, 1.0); `Recover (1, 2.0); `Crash (0, 3.0) ]);
  match
    F.apply e ~nodes:[ 0 ]
      ~link:(fun ~src:_ ~dst:_ -> None)
      ~on_crash:ignore ~on_recover:ignore
      [ F.crash ~at:1.0 7 ]
  with
  | () -> Alcotest.fail "crash of unknown node accepted"
  | exception Invalid_argument _ -> ()

(* --- runtime under fault schedules --- *)

let params ~tmin ~tmax = H.Params.make ~tmin ~tmax ()

let test_runtime_schedule_vs_legacy_crash () =
  (* A schedule containing a single crash must behave exactly like the
     legacy scripted crash under the same seed. *)
  let p = params ~tmin:2 ~tmax:10 in
  let legacy =
    H.Runtime.run
      (H.Runtime.config ~crash:{ H.Runtime.who = 1; at = 23.0 } ~seed:5L
         ~duration:100.0 p)
  in
  let scheduled =
    H.Runtime.run
      (H.Runtime.config ~faults:[ F.crash ~at:23.0 1 ] ~seed:5L
         ~duration:100.0 p)
  in
  check
    Alcotest.(option (float 1e-9))
    "same detection instant" legacy.H.Runtime.p0_detected_at
    scheduled.H.Runtime.p0_detected_at;
  check Alcotest.bool "fault log records the crash" true
    (scheduled.H.Runtime.fault_log = [ (23.0, F.Crash 1) ])

let test_runtime_crash_recover () =
  (* Crash-then-recover inside one round: at a T point the coordinator
     must ride it out without detecting. *)
  let p = params ~tmin:9 ~tmax:10 in
  let r =
    H.Runtime.run
      (H.Runtime.config
         ~faults:[ F.crash ~at:26.0 1; F.recover ~at:27.0 1 ]
         ~seed:3L ~duration:200.0 p)
  in
  check Alcotest.bool "no detection" true (r.H.Runtime.p0_detected_at = None);
  check Alcotest.int "both fault events logged" 2
    (List.length r.H.Runtime.fault_log)

let test_runtime_coordinator_crash () =
  let p = params ~tmin:2 ~tmax:10 in
  let r =
    H.Runtime.run
      (H.Runtime.config ~faults:[ F.crash ~at:25.0 0 ] ~seed:4L
         ~duration:200.0 p)
  in
  check Alcotest.bool "a dead coordinator detects nothing" true
    (r.H.Runtime.p0_detected_at = None);
  check Alcotest.int "the orphaned participant inactivates" 1
    (List.length r.H.Runtime.pi_inactivated_at);
  check Alcotest.bool "not a false detection" true
    (not r.H.Runtime.false_detection)

(* --- monitors --- *)

(* Each clause is unit-tested in isolation: the synthetic traces below
   are too bare to satisfy the other requirements (no heartbeats at all
   trips R1's watchdogs, an unexcused detection trips R3, ...). *)
let mon ?(reqs = H.Requirements.all) ?(grace = 0.0) ?(r1_bound = 20.0)
    ?(pi_bound = 28.0) () =
  H.Monitors.create ~grace ~n:1 ~r1_bound ~pi_bound reqs

let is_fail req m =
  match H.Monitors.verdict m with
  | H.Monitors.Fail v -> v.H.Monitors.req = req
  | H.Monitors.Pass -> false

let test_monitor_r1_watchdog () =
  let m = mon () in
  H.Monitors.feed m (H.Monitors.Deliver { src = 1; dst = 0; at = 10.0 });
  (* Silence past the bound with p[0] still active. *)
  H.Monitors.feed m (H.Monitors.Send { src = 0; dst = 1; at = 31.0 });
  check Alcotest.bool "R1 latched" true (is_fail H.Requirements.R1 m);
  match H.Monitors.verdict m with
  | H.Monitors.Fail v ->
      check (Alcotest.float 1e-9) "violation at the expired deadline" 30.0
        v.H.Monitors.at
  | H.Monitors.Pass -> Alcotest.fail "expected failure"

let test_monitor_r1_excuses_detection () =
  let m = mon ~reqs:[ H.Requirements.R1 ] () in
  H.Monitors.feed m (H.Monitors.Deliver { src = 0; dst = 1; at = 9.0 });
  H.Monitors.feed m (H.Monitors.Deliver { src = 1; dst = 0; at = 10.0 });
  H.Monitors.feed m (H.Monitors.Detect { at = 29.0 });
  H.Monitors.feed m (H.Monitors.Inactivate { node = 1; at = 33.0 });
  H.Monitors.finish m ~now:100.0;
  check Alcotest.bool "detection before the bound satisfies R1" true
    (H.Monitors.verdict m = H.Monitors.Pass)

let test_monitor_r2 () =
  let m = mon ~reqs:[ H.Requirements.R2 ] () in
  H.Monitors.feed m (H.Monitors.Inactivate { node = 1; at = 29.0 });
  H.Monitors.finish m ~now:100.0;
  check Alcotest.bool "unexcused inactivation refutes R2" true
    (is_fail H.Requirements.R2 m);
  (* Same trace with a loss touching the participant: excused. *)
  let m = mon ~reqs:[ H.Requirements.R2 ] () in
  H.Monitors.feed m
    (H.Monitors.Drop
       { src = 0; dst = 1; at = 5.0; kind = Sim.Net.Stochastic });
  H.Monitors.feed m (H.Monitors.Inactivate { node = 1; at = 29.0 });
  H.Monitors.finish m ~now:100.0;
  check Alcotest.bool "loss excuses the inactivation" true
    (H.Monitors.verdict m = H.Monitors.Pass)

let test_monitor_r2_grace () =
  (* The excusing late delivery lands after the inactivation: within the
     grace window it still clears the pending violation... *)
  let m = mon ~reqs:[ H.Requirements.R2 ] ~grace:5.0 () in
  H.Monitors.feed m (H.Monitors.Inactivate { node = 1; at = 29.0 });
  H.Monitors.feed m (H.Monitors.Late { src = 0; dst = 1; at = 31.0 });
  H.Monitors.finish m ~now:100.0;
  check Alcotest.bool "late delivery within grace excuses" true
    (H.Monitors.verdict m = H.Monitors.Pass);
  (* ...but an excuse arriving past the grace window comes too late. *)
  let m = mon ~reqs:[ H.Requirements.R2 ] ~grace:5.0 () in
  H.Monitors.feed m (H.Monitors.Inactivate { node = 1; at = 29.0 });
  H.Monitors.feed m (H.Monitors.Late { src = 0; dst = 1; at = 40.0 });
  check Alcotest.bool "stale excuse does not clear the violation" true
    (is_fail H.Requirements.R2 m)

let test_monitor_r3_and_quiescence () =
  let m = mon ~reqs:[ H.Requirements.R3 ] () in
  H.Monitors.feed m (H.Monitors.Detect { at = 15.0 });
  H.Monitors.finish m ~now:100.0;
  check Alcotest.bool "spontaneous self-inactivation refutes R3" true
    (is_fail H.Requirements.R3 m);
  let m = mon ~reqs:[ H.Requirements.R3 ] () in
  H.Monitors.feed m (H.Monitors.Crash { node = 1; at = 10.0 });
  H.Monitors.feed m (H.Monitors.Detect { at = 30.0 });
  (* Quiescence: traffic long after p[0] went down refutes R3 even
     though the detection itself was excused. *)
  H.Monitors.feed m (H.Monitors.Send { src = 0; dst = 1; at = 99.0 });
  check Alcotest.bool "system must quiesce after inactivation" true
    (is_fail H.Requirements.R3 m)

let test_monitor_render () =
  let m = mon ~reqs:[ H.Requirements.R2 ] () in
  H.Monitors.feed m (H.Monitors.Send { src = 0; dst = 1; at = 10.0 });
  H.Monitors.feed m (H.Monitors.Inactivate { node = 1; at = 29.0 });
  H.Monitors.finish m ~now:100.0;
  match H.Monitors.verdict m with
  | H.Monitors.Fail v ->
      let msc = H.Monitors.render_prefix ~n:1 v in
      List.iter
        (fun fragment ->
          check Alcotest.bool
            (Printf.sprintf "chart mentions %s" fragment)
            true (contains msc fragment))
        [ "p[0]"; "p[1]"; "send -> p[1]"; "inactivate"; "R2 violated" ]
  | H.Monitors.Pass -> Alcotest.fail "expected a violation to render"

(* --- campaign --- *)

let test_campaign_reproduces_f_point () =
  let c =
    H.Campaign.run ~kinds:[ H.Runtime.Halving ] ~datasets:[ (4, 10) ] ()
  in
  let bad = H.Campaign.violations c in
  check Alcotest.bool "halving at (4,10) is refuted" true (bad <> []);
  List.iter
    (fun (o : H.Campaign.outcome) ->
      (match o.verdict with
      | H.Monitors.Fail v ->
          check Alcotest.bool "violations are R1 against the claimed bound"
            true
            (v.H.Monitors.req = H.Requirements.R1)
      | H.Monitors.Pass -> ());
      match o.shrunk with
      | Some s ->
          check Alcotest.bool "shrunk schedule is minimal and still fails"
            true
            (List.length s <= List.length o.point.faults
            && (match H.Campaign.run_point { o.point with faults = s } with
               | H.Monitors.Fail _, _ -> true
               | H.Monitors.Pass, _ -> false))
      | None -> ())
    bad

let test_campaign_fixed_passes () =
  let c = H.Campaign.run ~fixed:true ~datasets:[ (1, 10); (9, 10) ] () in
  check Alcotest.int "fixed variants survive the adversary" 0
    (List.length (H.Campaign.violations c))

let test_campaign_json_deterministic () =
  let run () =
    H.Campaign.to_json
      (H.Campaign.run ~kinds:[ H.Runtime.Two_phase ] ~datasets:[ (4, 10) ]
         ~seed:11L ())
  in
  let a = run () and b = run () in
  check Alcotest.string "byte-identical reports" a b;
  check Alcotest.bool "report carries verdicts" true
    (contains a "\"verdict\"")

let test_campaign_bounds () =
  let p110 = params ~tmin:1 ~tmax:10 in
  (* Float halving: 20 + 5 + 2.5 + 1.25; the integer bound says 28. *)
  check (Alcotest.float 1e-9) "halving exact bound at (1,10)" 28.75
    (H.Campaign.exact_r1_bound H.Runtime.Halving p110);
  check (Alcotest.float 1e-9) "two-phase bound" 21.0
    (H.Campaign.exact_r1_bound H.Runtime.Two_phase p110);
  check (Alcotest.float 1e-9) "fixed-rate bound" 15.0
    (H.Campaign.exact_r1_bound (H.Runtime.Fixed_rate 2) p110);
  check (Alcotest.float 1e-9) "claimed bound" 20.0
    (H.Campaign.claimed_r1_bound p110)

let tests =
  ( "fault-injection",
    [
      Alcotest.test_case "schedule validation" `Quick test_validate;
      Alcotest.test_case "schedule json deterministic" `Quick
        test_schedule_json;
      Alcotest.test_case "partition cuts and heals links" `Quick
        test_apply_partition;
      Alcotest.test_case "crash/recover callbacks" `Quick
        test_apply_crash_recover;
      Alcotest.test_case "schedule matches legacy crash" `Quick
        test_runtime_schedule_vs_legacy_crash;
      Alcotest.test_case "crash-then-recover rides out" `Quick
        test_runtime_crash_recover;
      Alcotest.test_case "coordinator crash" `Quick
        test_runtime_coordinator_crash;
      Alcotest.test_case "monitor R1 watchdog" `Quick test_monitor_r1_watchdog;
      Alcotest.test_case "monitor R1 pass on detection" `Quick
        test_monitor_r1_excuses_detection;
      Alcotest.test_case "monitor R2" `Quick test_monitor_r2;
      Alcotest.test_case "monitor R2 grace window" `Quick
        test_monitor_r2_grace;
      Alcotest.test_case "monitor R3 and quiescence" `Quick
        test_monitor_r3_and_quiescence;
      Alcotest.test_case "monitor MSC rendering" `Quick test_monitor_render;
      Alcotest.test_case "campaign refutes unfixed halving" `Quick
        test_campaign_reproduces_f_point;
      Alcotest.test_case "campaign passes fixed variants" `Quick
        test_campaign_fixed_passes;
      Alcotest.test_case "campaign json deterministic" `Quick
        test_campaign_json_deterministic;
      Alcotest.test_case "campaign analytic bounds" `Quick
        test_campaign_bounds;
    ] )
