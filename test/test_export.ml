(* Tests for the UPPAAL (.xta) and mCRL2 exporters. *)

let check = Alcotest.check
module H = Heartbeat

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let params = H.Params.make ~tmin:1 ~tmax:2 ()

let test_xta_structure () =
  let s = Ta.Xta.to_string (H.Ta_models.build H.Ta_models.Binary params) in
  List.iter
    (fun needle ->
      check Alcotest.bool ("contains " ^ needle) true (contains s needle))
    [
      "int t = 2;";
      "clock w0;";
      "broadcast chan snd0;";
      "chan snd1_1;";
      "process P0() {";
      "Alive { w0 <= t }";
      "urgent TimeOut;";
      "init Alive;";
      "guard w0 == t;";
      "sync snd0!;";
      "sync dlv1_1?;";
      "system P0, P1, Ch0_1, Ch1_1;";
    ]

let test_xta_min_operator () =
  (* static with two participants uses min over the waiting times, which
     must come out as UPPAAL's <? operator *)
  let p2 = H.Params.make ~n:2 ~tmin:1 ~tmax:2 () in
  let s = Ta.Xta.to_string (H.Ta_models.build H.Ta_models.Static p2) in
  check Alcotest.bool "min exported as <?" true (contains s "<?")

let test_xta_arrays_and_monitors () =
  let s =
    Ta.Xta.to_string
      (H.Ta_models.build ~with_r1_monitors:true H.Ta_models.Binary params)
  in
  check Alcotest.bool "monitor process" true (contains s "process M1() {");
  check Alcotest.bool "error location" true (contains s "Error")

let test_mcrl2_structure () =
  let s = Proc.Mcrl2.to_string (H.Pa_models.build H.Pa_models.Binary params) in
  List.iter
    (fun needle ->
      check Alcotest.bool ("contains " ^ needle) true (contains s needle))
    [
      "act s_arm: Int;";
      "proc P0(active: Bool, t: Int, rcvd1: Bool, tm1: Int) =";
      "proc SW0Armed(c: Int, lim: Int) =";
      "sum x: Int . (1 <= x && x <= 2) -> r_arm(x)";
      "init";
      "allow({tick|tick";
      "comm({";
      "s_beat0|r_beat0 -> beat0";
      "P0(true, 2, true, 2)";
    ]

let test_mcrl2_sort_inference () =
  (* The dynamic protocol's p0 has a gone flag seeded from the init
     values; inference must type it Bool. *)
  let s = Proc.Mcrl2.to_string (H.Pa_models.build H.Pa_models.Dynamic params) in
  check Alcotest.bool "gone is Bool" true (contains s "gone1: Bool");
  check Alcotest.bool "jnd is Bool" true (contains s "jnd1: Bool")

let test_exports_for_all_variants () =
  (* Exports are total: every variant produces a non-trivial document. *)
  List.iter
    (fun v ->
      let xta = Ta.Xta.to_string (H.Ta_models.build v params) in
      check Alcotest.bool
        (H.Ta_models.variant_name v ^ " xta")
        true
        (String.length xta > 200);
      match H.Pa_models.of_ta v with
      | Some pv ->
          let m = Proc.Mcrl2.to_string (H.Pa_models.build pv params) in
          check Alcotest.bool
            (H.Ta_models.variant_name v ^ " mcrl2")
            true
            (String.length m > 200)
      | None -> ())
    H.Ta_models.all_variants

(* --- the .xta parser ------------------------------------------------ *)

let test_xta_roundtrip_variants () =
  (* print -> parse -> print is the identity on every shipped model *)
  List.iter
    (fun v ->
      let m = H.Ta_models.build ~with_r1_monitors:true v params in
      let s = Ta.Xta.to_string m in
      check Alcotest.string
        (H.Ta_models.variant_name v ^ " round-trips")
        s
        (Ta.Xta.to_string (Ta.Xta.parse s)))
    H.Ta_models.all_variants

let fischer_like =
  "// strict guards, urgent states, broadcast - the FC extensions\n\
   int id = 0;\n\
   clock x;\n\
   broadcast chan go;\n\
   process P() {\n\
  \  state\n\
  \    Idle,\n\
  \    Try { x <= 3 },\n\
  \    Wait,\n\
  \    CS;\n\
  \  urgent Idle;\n\
  \  init Idle;\n\
  \  trans\n\
  \    Idle -> Try { guard id == 0; assign x = 0; },\n\
  \    Try -> Wait { guard x < 3; sync go!; assign id = 1, x = 0; },\n\
  \    Wait -> CS { guard x > 3 && id == 1; },\n\
  \    CS -> Idle { assign id = 0; };\n\
   }\n\
   system P;\n"

let test_xta_parse_strict () =
  let m = Ta.Xta.parse fischer_like in
  let a = List.hd m.Ta.Model.automata in
  check Alcotest.int "locations" 4 (List.length a.Ta.Model.locations);
  check Alcotest.int "edges" 4 (List.length a.Ta.Model.edges);
  let wait_cs = List.nth a.Ta.Model.edges 2 in
  (match wait_cs.Ta.Model.guard with
  | Ta.Expr.And
      ( Ta.Expr.Cmp (Ta.Expr.Gt, Ta.Expr.Clock "x", Ta.Expr.Int 3),
        Ta.Expr.Cmp (Ta.Expr.Eq, Ta.Expr.Var "id", Ta.Expr.Int 1) ) ->
      ()
  | _ -> Alcotest.fail "strict > guard not parsed as written");
  (* the urgent marker survived *)
  let idle = List.hd a.Ta.Model.locations in
  check Alcotest.bool "Idle urgent" true (idle.Ta.Model.kind = Ta.Model.Urgent);
  (* caps are inferred past every literal *)
  let c = List.hd m.Ta.Model.clocks in
  check Alcotest.bool "cap exceeds literals" true (c.Ta.Model.cap > 3);
  (* and the parse is stable under one more round trip *)
  let s = Ta.Xta.to_string m in
  check Alcotest.string "fixpoint" s (Ta.Xta.to_string (Ta.Xta.parse s))

let test_xta_parse_errors () =
  List.iter
    (fun (src, fragment) ->
      try
        ignore (Ta.Xta.parse src : Ta.Model.t);
        Alcotest.failf "accepted %S" src
      with Ta.Xta.Parse_error msg ->
        check Alcotest.bool
          (Printf.sprintf "%S mentions %S" msg fragment)
          true
          (contains msg fragment))
    [
      ("clock x\nsystem P;", "expected \";\"");
      ("process P() { state A; init A; }\nsystem Q;", "undeclared process Q");
      ("int a[2] = { 1 };\nsystem P;", "2 elements but initialises 1");
      ("clock x;\nprocess P() { state A; init A;\n  trans A -> A { assign x = 5; }; }\nsystem P;",
       "only be reset to 0");
      ("@", "unexpected character");
    ]

let tests =
  ( "export",
    [
      Alcotest.test_case "xta structure" `Quick test_xta_structure;
      Alcotest.test_case "xta min operator" `Quick test_xta_min_operator;
      Alcotest.test_case "xta monitors" `Quick test_xta_arrays_and_monitors;
      Alcotest.test_case "mcrl2 structure" `Quick test_mcrl2_structure;
      Alcotest.test_case "mcrl2 sort inference" `Quick test_mcrl2_sort_inference;
      Alcotest.test_case "exports are total" `Quick test_exports_for_all_variants;
      Alcotest.test_case "xta parse round-trips" `Quick
        test_xta_roundtrip_variants;
      Alcotest.test_case "xta strict comparisons" `Quick test_xta_parse_strict;
      Alcotest.test_case "xta parse errors" `Quick test_xta_parse_errors;
    ] )
