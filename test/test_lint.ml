(* Tests for the hblint static-analysis pass: the mutation corpus (each
   seeded defect fires exactly its intended diagnostic), cleanliness of
   every shipped model, the unified-signature regression for the mCRL2
   exporter, state-bound soundness, explorer pre-sizing parity, JSON
   determinism, and the pinning test for the leave-flag fix. *)

let check = Alcotest.check

module P = Proc.Pexpr
module T = Proc.Term
module S = Proc.Spec
module E = Ta.Expr
module M = Ta.Model
module R = Lint.Report
module H = Heartbeat

(* --- helpers ---------------------------------------------------------- *)

(* Codes of the error/warning diagnostics — the ones that gate.  Infos
   (e.g. TA-VAR-WRITE-ONLY on an auxiliary cell) are deliberately
   ignored: a mutation must introduce exactly one new gating finding. *)
let gating (r : R.t) =
  List.filter_map
    (fun (d : R.diag) ->
      match d.R.severity with
      | R.Error | R.Warning -> Some d.R.code
      | R.Info -> None)
    r.R.diags
  |> List.sort_uniq String.compare

let fires_exactly code (r : R.t) =
  check
    Alcotest.(list string)
    (Printf.sprintf "mutation fires exactly %s" code)
    [ code ] (gating r)

let spec ?(init = []) ?(comms = []) ?(allow = []) ?(hide = []) defs =
  { S.defs; init; comms; allow; hide }

let lint_pa s = Lint.Pa.analyze ~model:"mut" s

let ta ?(vars = []) ?(clocks = []) ?(chans = []) automata =
  { M.vars; clocks; chans; automata }

let auto ?(init_loc = "L0") name locations edges =
  { M.auto_name = name; locations; edges; init_loc }

let lint_ta m = Lint.Ta_model.analyze ~model:"mut" m

(* A minimal healthy recursive loop offering action [a]. *)
let loop_def name a = T.def name [] T.(act a [] @. call name [])

(* --- PA mutation corpus ----------------------------------------------- *)

let test_pa_type () =
  (* The same action carries an Int in one process and a Bool in another:
     the unified-signature inference must flag the clash (this is the
     regression for the mCRL2 exporter's per-occurrence sort guessing). *)
  let s =
    spec
      ~init:[ ("A", []); ("B", []) ]
      [
        T.def "A" [] T.(act "m" [ P.int 1 ] @. call "A" []);
        T.def "B" [] T.(act "m" [ P.tt ] @. call "B" []);
      ]
  in
  fires_exactly "PA-TYPE" (lint_pa s);
  (* and the exporter itself still renders a (best-effort) spec *)
  let rendered = Format.asprintf "%a" Proc.Mcrl2.pp s in
  check Alcotest.bool "exporter total on ill-sorted spec" true
    (String.length rendered > 0)

let test_pa_act_arity () =
  let s =
    spec
      ~init:[ ("A", []); ("B", []) ]
      [
        T.def "A" [] T.(act "m" [ P.int 1 ] @. call "A" []);
        T.def "B" [] T.(act "m" [ P.int 1; P.int 2 ] @. call "B" []);
      ]
  in
  fires_exactly "PA-ACT-ARITY" (lint_pa s)

let test_pa_unbound_var () =
  let s =
    spec ~init:[ ("A", []) ]
      [ T.def "A" [] T.(act "a" [ P.v "x" ] @. call "A" []) ]
  in
  fires_exactly "PA-UNBOUND-VAR" (lint_pa s)

let test_pa_dup_def () =
  let s = spec ~init:[ ("A", []) ] [ loop_def "A" "a"; loop_def "A" "a" ] in
  fires_exactly "PA-DUP-DEF" (lint_pa s)

let test_pa_undef () =
  let s =
    spec ~init:[ ("A", []) ] [ T.def "A" [] T.(act "a" [] @. call "B" []) ]
  in
  fires_exactly "PA-UNDEF" (lint_pa s)

let test_pa_arity () =
  let s =
    spec ~init:[ ("A", []) ]
      [ T.def "A" [ "x" ] T.(act "a" [] @. call "A" []) ]
  in
  fires_exactly "PA-ARITY" (lint_pa s)

let test_pa_sum_empty () =
  let s =
    spec ~init:[ ("A", []) ]
      [ T.def "A" [] (T.Sum ("x", 1, 0, T.(act "a" [ P.v "x" ] @. call "A" []))) ]
  in
  fires_exactly "PA-SUM-EMPTY" (lint_pa s)

let test_pa_comm_self () =
  let s =
    spec ~init:[ ("A", []) ] ~comms:[ ("a", "a", "b") ] ~allow:[ "b" ]
      [ loop_def "A" "a" ]
  in
  fires_exactly "PA-COMM-SELF" (lint_pa s)

let test_pa_hide_tick () =
  let s =
    spec ~init:[ ("A", []) ] ~allow:[ S.tick_name ] ~hide:[ S.tick_name ]
      [ loop_def "A" S.tick_name ]
  in
  fires_exactly "PA-HIDE-TICK" (lint_pa s)

let test_pa_dead_def () =
  let s = spec ~init:[ ("A", []) ] [ loop_def "A" "a"; loop_def "B" "b" ] in
  fires_exactly "PA-DEAD-DEF" (lint_pa s)

let test_pa_comm_dead () =
  (* the receive half [r] is never offered by any process *)
  let s =
    spec ~init:[ ("A", []) ] ~comms:[ ("s", "r", "c") ] [ loop_def "A" "s" ]
  in
  fires_exactly "PA-COMM-DEAD" (lint_pa s)

let test_pa_allow_dead () =
  let s = spec ~init:[ ("A", []) ] ~allow:[ "z" ] [ loop_def "A" "a" ] in
  fires_exactly "PA-ALLOW-DEAD" (lint_pa s)

let test_pa_hide_dead () =
  let s =
    spec ~init:[ ("A", []) ] ~allow:[ "a" ] ~hide:[ "b" ] [ loop_def "A" "a" ]
  in
  fires_exactly "PA-HIDE-DEAD" (lint_pa s)

let test_pa_no_tick () =
  (* one component keeps the global clock alive, the other never offers
     tick and therefore blocks it *)
  let s =
    spec
      ~init:[ ("A", []); ("B", []) ]
      [ loop_def "A" S.tick_name; loop_def "B" "b" ]
  in
  fires_exactly "PA-NO-TICK" (lint_pa s)

(* --- TA mutation corpus ----------------------------------------------- *)

let l0 = M.loc "L0"
let self ?guard ?sync ?updates () =
  M.edge ?guard ?sync ?updates ~src:"L0" ~dst:"L0" ()

let test_ta_dup_decl () =
  let m =
    ta
      ~vars:[ M.scalar "x" 0; M.scalar "x" 1 ]
      [ auto "A" [ l0 ] [] ]
  in
  fires_exactly "TA-DUP-DECL" (lint_ta m)

let test_ta_undef_var () =
  let m = ta [ auto "A" [ l0 ] [ self ~guard:E.(v "y" = i 0) () ] ] in
  fires_exactly "TA-UNDEF-VAR" (lint_ta m)

let test_ta_undef_clock () =
  let m = ta [ auto "A" [ l0 ] [ self ~updates:[ M.Reset "c" ] () ] ] in
  fires_exactly "TA-UNDEF-CLOCK" (lint_ta m)

let test_ta_undef_chan () =
  let m = ta [ auto "A" [ l0 ] [ self ~sync:(M.Send "ch") () ] ] in
  fires_exactly "TA-UNDEF-CHAN" (lint_ta m)

let test_ta_undef_loc () =
  let m =
    ta [ auto "A" [ l0 ] [ M.edge ~src:"L0" ~dst:"Nowhere" () ] ]
  in
  fires_exactly "TA-UNDEF-LOC" (lint_ta m)

let test_ta_array_as_scalar () =
  let m =
    ta
      ~vars:[ M.array "a" [ 0; 1 ] ]
      [ auto "A" [ l0 ] [ self ~guard:E.(v "a" = i 0) () ] ]
  in
  fires_exactly "TA-ARRAY" (lint_ta m)

let test_ta_idx_range () =
  let m =
    ta
      ~vars:[ M.array "a" [ 0; 1 ] ]
      [ auto "A" [ l0 ] [ self ~guard:E.(Elem ("a", i 5) = i 0) () ] ]
  in
  fires_exactly "TA-IDX-RANGE" (lint_ta m)

let test_ta_dead_loc () =
  let m = ta [ auto "A" [ l0; M.loc "L1" ] [] ] in
  fires_exactly "TA-DEAD-LOC" (lint_ta m)

let test_ta_guard_unsat () =
  (* x is initialised to 0 and never written, so x == 5 can never hold *)
  let m =
    ta
      ~vars:[ M.scalar "x" 0 ]
      [ auto "A" [ l0 ] [ self ~guard:E.(v "x" = i 5) () ] ]
  in
  fires_exactly "TA-GUARD-UNSAT" (lint_ta m)

let test_ta_guard_inv () =
  (* the guard is satisfiable on its own but contradicts the source
     location's invariant *)
  let m =
    ta
      ~clocks:[ { M.clock_name = "c"; cap = 10 } ]
      [
        auto "A"
          [ M.loc ~invariant:E.(clk "c" <= i 2) "L0" ]
          [ self ~guard:E.(clk "c" >= i 5) () ];
      ]
  in
  fires_exactly "TA-GUARD-INV" (lint_ta m)

let test_ta_chan_no_recv () =
  let m =
    ta ~chans:[ M.chan "h" ]
      [ auto "A" [ l0 ] [ self ~sync:(M.Send "h") () ] ]
  in
  fires_exactly "TA-CHAN-NO-RECV" (lint_ta m)

let test_ta_chan_no_send () =
  let m =
    ta ~chans:[ M.chan "h" ]
      [ auto "A" [ l0 ] [ self ~sync:(M.Recv "h") () ] ]
  in
  fires_exactly "TA-CHAN-NO-SEND" (lint_ta m)

let test_ta_clock_unread () =
  let m =
    ta
      ~clocks:[ { M.clock_name = "c"; cap = 3 } ]
      [ auto "A" [ l0 ] [ self ~updates:[ M.Reset "c" ] () ] ]
  in
  fires_exactly "TA-CLOCK-UNREAD" (lint_ta m)

let test_ta_var_unbounded () =
  let m =
    ta
      ~vars:[ M.scalar "x" 0 ]
      [
        auto "A" [ l0 ]
          [ self ~updates:[ M.Assign (M.Scalar "x", E.(v "x" + i 1)) ] () ];
      ]
  in
  fires_exactly "TA-VAR-UNBOUNDED" (lint_ta m)

let test_ta_zeno () =
  let m =
    ta
      [
        auto "A"
          [ M.loc ~kind:M.Urgent "L0"; M.loc ~kind:M.Urgent "L1" ]
          [
            M.edge ~src:"L0" ~dst:"L1" (); M.edge ~src:"L1" ~dst:"L0" ();
          ];
      ]
  in
  fires_exactly "TA-ZENO" (lint_ta m)

(* --- shipped models lint clean ---------------------------------------- *)

let lint_params = H.Params.make ~n:2 ~tmin:4 ~tmax:10 ()

let shipped_reports () =
  List.concat_map
    (fun v ->
      let name = H.Ta_models.variant_name v in
      let pa =
        match H.Pa_models.of_ta v with
        | None -> []
        | Some pv ->
            [
              Lint.Pa.analyze ~model:("pa:" ^ name)
                (H.Pa_models.build pv lint_params);
            ]
      in
      let ta fixed =
        let label = if fixed then "ta:" ^ name ^ ":fixed" else "ta:" ^ name in
        Lint.Ta_model.analyze ~model:label
          (H.Ta_models.build ~fixed ~with_r1_monitors:true v lint_params)
      in
      pa @ [ ta false; ta true ])
    H.Ta_models.all_variants

let test_shipped_clean () =
  List.iter
    (fun (r : R.t) ->
      check Alcotest.int
        (r.R.model ^ ": no lint errors")
        0 (R.errors r);
      check Alcotest.int
        (r.R.model ^ ": no lint warnings")
        0 (R.warnings r))
    (shipped_reports ())

(* --- JSON determinism -------------------------------------------------- *)

let test_json_deterministic () =
  (* Two full, independent analysis runs must serialise byte-identically:
     no hash-table iteration order may leak into the report. *)
  let j1 = R.to_json (shipped_reports ()) in
  let j2 = R.to_json (shipped_reports ()) in
  check Alcotest.string "hblint --json is byte-deterministic" j1 j2

(* --- state-bound soundness -------------------------------------------- *)

let small = H.Params.make ~n:1 ~tmin:1 ~tmax:2 ()

let test_bound_sound_ta () =
  let m = H.Ta_models.build H.Ta_models.Binary small in
  let sys = Ta.Semantics.system (Ta.Semantics.compile m) in
  let actual, complete = Mc.Explore.count sys in
  check Alcotest.bool "exploration complete" true complete;
  match Lint.Ta_model.static_bound m with
  | Lint.Interval.Unbounded ->
      Alcotest.fail "static bound for the small binary TA should be finite"
  | Lint.Interval.Finite bound ->
      if bound < actual then
        Alcotest.failf "unsound TA state bound: %d < %d actual" bound actual

let test_bound_sound_pa () =
  let s = H.Pa_models.build H.Pa_models.Binary small in
  let sys = Proc.Semantics.system s in
  let actual, complete = Mc.Explore.count sys in
  check Alcotest.bool "exploration complete" true complete;
  match Lint.Pa.static_bound s with
  | Lint.Interval.Unbounded ->
      Alcotest.fail "static bound for the small binary PA should be finite"
  | Lint.Interval.Finite bound ->
      if bound < actual then
        Alcotest.failf "unsound PA state bound: %d < %d actual" bound actual

(* --- explorer pre-sizing parity --------------------------------------- *)

let test_presize_parity () =
  (* A table-sizing hint — absent, huge, or absurdly small — must never
     change exploration results. *)
  let m = H.Ta_models.build H.Ta_models.Binary small in
  let sys = Ta.Semantics.system (Ta.Semantics.compile m) in
  let base, bc = Mc.Explore.count sys in
  let hinted, hc = Mc.Explore.count ~expected_states:1_000_000 sys in
  let tiny, tc = Mc.Explore.count ~expected_states:1 sys in
  check Alcotest.(pair int bool) "seq hinted" (base, bc) (hinted, hc);
  check Alcotest.(pair int bool) "seq tiny hint" (base, bc) (tiny, tc);
  let par, pc = Mc.Pexplore.count ~domains:2 ~expected_states:7 sys in
  check Alcotest.(pair int bool) "par hinted" (base, bc) (par, pc)

(* --- pinning: the write-only leave flag stays gone --------------------- *)

let test_dynamic_no_leave_flag () =
  (* hblint's TA-VAR-WRITE-ONLY flagged leave1/leave2 in the dynamic
     model: set on the Rcvd -> Left edge, never read (departure is
     already tracked by the Left location).  The cells were removed;
     this pins them out. *)
  let m = H.Ta_models.build H.Ta_models.Dynamic lint_params in
  List.iter
    (fun (v : M.var_decl) ->
      if
        String.length v.M.var_name >= 5
        && String.sub v.M.var_name 0 5 = "leave"
      then Alcotest.failf "write-only leave flag resurrected: %s" v.M.var_name)
    m.M.vars;
  (* the trimmed model still compiles and explores *)
  let sys = Ta.Semantics.system (Ta.Semantics.compile m) in
  let count, _ = Mc.Explore.count ~max_states:1_000 sys in
  check Alcotest.bool "dynamic model still explores" true (count > 0)

(* --- suite ------------------------------------------------------------- *)

(* --- allowlist bookkeeping ------------------------------------------- *)

let test_unused_allows () =
  let r =
    R.make ~model:"pa:binary"
      ~diags:[ R.diag ~code:"PA-DEAD-DEF" ~where:"X" "dead" ]
      ~stats:R.no_stats
  in
  (* matched: bare code, and model-qualified with the right model *)
  check
    Alcotest.(list string)
    "matched entries are not reported" []
    (R.unused_allows [ "PA-DEAD-DEF"; "pa:binary/PA-DEAD-DEF" ] [ r ]);
  (* unmatched: unknown code, and right code under the wrong model *)
  check
    Alcotest.(list string)
    "stale entries are reported in order"
    [ "NO-SUCH-CODE"; "ta:binary/PA-DEAD-DEF" ]
    (R.unused_allows
       [ "PA-DEAD-DEF"; "NO-SUCH-CODE"; "ta:binary/PA-DEAD-DEF" ]
       [ r ]);
  check
    Alcotest.(list string)
    "everything is stale against no reports" [ "PA-DEAD-DEF" ]
    (R.unused_allows [ "PA-DEAD-DEF" ] [])

let tests =
  ( "lint",
    [
      Alcotest.test_case "mutation: PA-TYPE (+ mcrl2 regression)" `Quick
        test_pa_type;
      Alcotest.test_case "mutation: PA-ACT-ARITY" `Quick test_pa_act_arity;
      Alcotest.test_case "mutation: PA-UNBOUND-VAR" `Quick test_pa_unbound_var;
      Alcotest.test_case "mutation: PA-DUP-DEF" `Quick test_pa_dup_def;
      Alcotest.test_case "mutation: PA-UNDEF" `Quick test_pa_undef;
      Alcotest.test_case "mutation: PA-ARITY" `Quick test_pa_arity;
      Alcotest.test_case "mutation: PA-SUM-EMPTY" `Quick test_pa_sum_empty;
      Alcotest.test_case "mutation: PA-COMM-SELF" `Quick test_pa_comm_self;
      Alcotest.test_case "mutation: PA-HIDE-TICK" `Quick test_pa_hide_tick;
      Alcotest.test_case "mutation: PA-DEAD-DEF" `Quick test_pa_dead_def;
      Alcotest.test_case "mutation: PA-COMM-DEAD" `Quick test_pa_comm_dead;
      Alcotest.test_case "mutation: PA-ALLOW-DEAD" `Quick test_pa_allow_dead;
      Alcotest.test_case "mutation: PA-HIDE-DEAD" `Quick test_pa_hide_dead;
      Alcotest.test_case "mutation: PA-NO-TICK" `Quick test_pa_no_tick;
      Alcotest.test_case "mutation: TA-DUP-DECL" `Quick test_ta_dup_decl;
      Alcotest.test_case "mutation: TA-UNDEF-VAR" `Quick test_ta_undef_var;
      Alcotest.test_case "mutation: TA-UNDEF-CLOCK" `Quick test_ta_undef_clock;
      Alcotest.test_case "mutation: TA-UNDEF-CHAN" `Quick test_ta_undef_chan;
      Alcotest.test_case "mutation: TA-UNDEF-LOC" `Quick test_ta_undef_loc;
      Alcotest.test_case "mutation: TA-ARRAY" `Quick test_ta_array_as_scalar;
      Alcotest.test_case "mutation: TA-IDX-RANGE" `Quick test_ta_idx_range;
      Alcotest.test_case "mutation: TA-DEAD-LOC" `Quick test_ta_dead_loc;
      Alcotest.test_case "mutation: TA-GUARD-UNSAT" `Quick test_ta_guard_unsat;
      Alcotest.test_case "mutation: TA-GUARD-INV" `Quick test_ta_guard_inv;
      Alcotest.test_case "mutation: TA-CHAN-NO-RECV" `Quick
        test_ta_chan_no_recv;
      Alcotest.test_case "mutation: TA-CHAN-NO-SEND" `Quick
        test_ta_chan_no_send;
      Alcotest.test_case "mutation: TA-CLOCK-UNREAD" `Quick
        test_ta_clock_unread;
      Alcotest.test_case "mutation: TA-VAR-UNBOUNDED" `Quick
        test_ta_var_unbounded;
      Alcotest.test_case "mutation: TA-ZENO" `Quick test_ta_zeno;
      Alcotest.test_case "all shipped models lint clean" `Quick
        test_shipped_clean;
      Alcotest.test_case "json output is deterministic" `Quick
        test_json_deterministic;
      Alcotest.test_case "TA state bound is sound" `Quick test_bound_sound_ta;
      Alcotest.test_case "PA state bound is sound" `Quick test_bound_sound_pa;
      Alcotest.test_case "expected_states hint preserves results" `Quick
        test_presize_parity;
      Alcotest.test_case "dynamic model has no leave flag" `Quick
        test_dynamic_no_leave_flag;
      Alcotest.test_case "unused allow entries are reported" `Quick
        test_unused_allows;
    ] )
