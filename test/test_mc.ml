(* Tests for the explicit-state checker: exploration, monitors, regular
   expressions and safety verdicts. *)

let check = Alcotest.check

(* A tiny reference system: a counter modulo [n] with an increment label,
   plus an optional "down" transition from the top. *)
let counter n : (int, string) Mc.System.t =
  (module struct
    type state = int
    type label = string

    let initial = 0

    let successors s =
      if s = n - 1 then [ ("reset", 0) ] else [ ("inc", s + 1) ]

    let equal_state = Int.equal
    let hash_state = Hashtbl.hash
    let pp_state = Format.pp_print_int
    let pp_label = Format.pp_print_string
  end)

(* A binary tree of choices of depth [d]: 2^d leaves, useful for bound
   tests. *)
let tree d : (int list, string) Mc.System.t =
  (module struct
    type state = int list
    type label = string

    let initial = []

    let successors s =
      if List.length s >= d then []
      else [ ("l", 0 :: s); ("r", 1 :: s) ]

    let equal_state = ( = )
    let hash_state = Hashtbl.hash
    let pp_state ppf s = Format.fprintf ppf "%d" (List.length s)
    let pp_label = Format.pp_print_string
  end)

let test_space_counter () =
  let space = Mc.Explore.space (counter 10) in
  check Alcotest.bool "complete" true space.Mc.Explore.complete;
  check Alcotest.int "states" 10 (Lts.Graph.num_states space.Mc.Explore.lts);
  check Alcotest.int "transitions" 10
    (Lts.Graph.num_transitions space.Mc.Explore.lts);
  check Alcotest.int "state array" 10 (Array.length space.Mc.Explore.states)

let test_space_bound () =
  let space = Mc.Explore.space ~max_states:5 (counter 10) in
  check Alcotest.bool "truncated" false space.Mc.Explore.complete;
  check Alcotest.int "bounded" 5 (Lts.Graph.num_states space.Mc.Explore.lts)

let test_count () =
  check Alcotest.(pair int bool) "count" (10, true) (Mc.Explore.count (counter 10));
  check Alcotest.(pair int bool) "tree" (15, true) (Mc.Explore.count (tree 3))

let test_find_shortest () =
  match Mc.Explore.find ~goal:(fun s -> s = 7) (counter 10) with
  | Mc.Explore.Reached w ->
      check Alcotest.int "length" 7 (List.length w.Mc.Explore.trace);
      check Alcotest.int "state" 7 w.Mc.Explore.state
  | _ -> Alcotest.fail "expected Reached"

let test_find_unreachable () =
  match Mc.Explore.find ~goal:(fun s -> s = 42) (counter 10) with
  | Mc.Explore.Unreachable -> ()
  | _ -> Alcotest.fail "expected Unreachable"

let test_find_initial () =
  match Mc.Explore.find ~goal:(fun s -> s = 0) (counter 10) with
  | Mc.Explore.Reached w -> check Alcotest.int "empty trace" 0 (List.length w.Mc.Explore.trace)
  | _ -> Alcotest.fail "expected Reached"

let test_find_bound () =
  match Mc.Explore.find ~max_states:4 ~goal:(fun s -> s = 9) (counter 10) with
  | Mc.Explore.Bound_hit n -> check Alcotest.int "bound" 4 n
  | _ -> Alcotest.fail "expected Bound_hit"

(* --- truncation contract (see Explore.space doc) --- *)

(* A random sparse successor table over states 0..n-1, for contract
   properties. *)
type rand_sys = { n : int; succ : (string * int) array array }

let table_system { succ; _ } : (int, string) Mc.System.t =
  (module struct
    type state = int
    type label = string

    let initial = 0
    let successors s = Array.to_list succ.(s)
    let equal_state = Int.equal
    let hash_state = Hashtbl.hash
    let pp_state = Format.pp_print_int
    let pp_label = Format.pp_print_string
  end)

let rand_sys_arb =
  let open QCheck.Gen in
  let gen =
    int_range 1 30 >>= fun n ->
    let edge = pair (oneofl [ "a"; "b"; "c" ]) (int_bound (n - 1)) in
    array_size (return n) (array_size (int_bound 3) edge) >>= fun succ ->
    return { n; succ }
  in
  let print { n; succ } =
    Format.asprintf "%d states:%s" n
      (String.concat ""
         (List.mapi
            (fun s edges ->
              Printf.sprintf " %d->[%s]" s
                (String.concat ","
                   (List.map
                      (fun (l, t) -> l ^ string_of_int t)
                      (Array.to_list edges))))
            (Array.to_list succ)))
  in
  QCheck.make ~print gen

(* Truncated exploration is the induced subgraph on the first [max_states]
   states in BFS discovery order: the state array is a prefix of the full
   one, the transition list is the order-preserving restriction to retained
   endpoints, and [complete] is false exactly when states were cut. *)
let prop_truncation_prefix =
  QCheck.Test.make ~name:"truncated space = induced prefix subgraph"
    ~count:200
    QCheck.(pair rand_sys_arb small_nat)
    (fun (rs, m) ->
      let sys = table_system rs in
      let full = Mc.Explore.space sys in
      let full_n = Lts.Graph.num_states full.Mc.Explore.lts in
      let k = m mod (full_n + 2) in
      let tr = Mc.Explore.space ~max_states:k sys in
      let kept = Lts.Graph.num_states tr.Mc.Explore.lts in
      kept = max 1 (min k full_n)
      && tr.Mc.Explore.states = Array.sub full.Mc.Explore.states 0 kept
      && Lts.Graph.transitions tr.Mc.Explore.lts
         = List.filter
             (fun (i, _, j) -> i < kept && j < kept)
             (Lts.Graph.transitions full.Mc.Explore.lts)
      && tr.Mc.Explore.complete = (kept = full_n))

let test_truncation_tree () =
  let full = Mc.Explore.space (tree 4) in
  check Alcotest.int "full tree" 31
    (Lts.Graph.num_states full.Mc.Explore.lts);
  let tr = Mc.Explore.space ~max_states:12 (tree 4) in
  check Alcotest.bool "truncated" false tr.Mc.Explore.complete;
  check Alcotest.int "kept" 12 (Lts.Graph.num_states tr.Mc.Explore.lts);
  check Alcotest.bool "states are a prefix" true
    (tr.Mc.Explore.states = Array.sub full.Mc.Explore.states 0 12);
  check Alcotest.bool "transitions are the induced restriction" true
    (Lts.Graph.transitions tr.Mc.Explore.lts
    = List.filter
        (fun (i, _, j) -> i < 12 && j < 12)
        (Lts.Graph.transitions full.Mc.Explore.lts))

let test_bound_exact_is_complete () =
  (* A bound equal to the exact state count is not a truncation. *)
  let space = Mc.Explore.space ~max_states:10 (counter 10) in
  check Alcotest.bool "complete at exact bound" true space.Mc.Explore.complete;
  check Alcotest.(pair int bool) "count at exact bound" (10, true)
    (Mc.Explore.count ~max_states:10 (counter 10));
  let below = Mc.Explore.space ~max_states:9 (counter 10) in
  check Alcotest.bool "truncated one below" false below.Mc.Explore.complete

(* --- find edge cases --- *)

let test_find_bound_boundary () =
  (* Goal at state 7 of a 10-counter: reachable with bound 8 (the goal is
     the 8th interned state), Bound_hit with bound 7. *)
  (match Mc.Explore.find ~max_states:8 ~goal:(fun s -> s = 7) (counter 10) with
  | Mc.Explore.Reached w ->
      check Alcotest.int "reached just inside bound" 7
        (List.length w.Mc.Explore.trace)
  | _ -> Alcotest.fail "expected Reached with bound 8");
  match Mc.Explore.find ~max_states:7 ~goal:(fun s -> s = 7) (counter 10) with
  | Mc.Explore.Bound_hit n -> check Alcotest.int "bound hit" 7 n
  | _ -> Alcotest.fail "expected Bound_hit with bound 7"

(* A diamond with a shortcut: BFS must take the short edge even though the
   long path is listed first. *)
let diamond : (int, string) Mc.System.t =
  (module struct
    type state = int
    type label = string

    let initial = 0

    let successors = function
      | 0 -> [ ("long", 1); ("short", 3) ]
      | 1 -> [ ("mid", 2) ]
      | 2 -> [ ("last", 3) ]
      | _ -> []

    let equal_state = Int.equal
    let hash_state = Hashtbl.hash
    let pp_state = Format.pp_print_int
    let pp_label = Format.pp_print_string
  end)

let test_find_diamond_shortest () =
  match Mc.Explore.find ~goal:(fun s -> s = 3) diamond with
  | Mc.Explore.Reached w ->
      check Alcotest.(list string) "takes the shortcut" [ "short" ]
        w.Mc.Explore.trace
  | _ -> Alcotest.fail "expected Reached"

(* First-path depth-first search over a successor table, for comparison
   with the BFS witness. *)
let dfs_find ~goal (succ : (string * int) array array) =
  let visited = Hashtbl.create 16 in
  let rec go s trace =
    if goal s then Some (List.rev trace)
    else if Hashtbl.mem visited s then None
    else begin
      Hashtbl.add visited s ();
      Array.fold_left
        (fun acc (l, t) ->
          match acc with Some _ -> acc | None -> go t (l :: trace))
        None succ.(s)
    end
  in
  go 0 []

let prop_bfs_no_longer_than_dfs =
  QCheck.Test.make ~name:"find witness is no longer than a DFS path"
    ~count:200
    QCheck.(pair rand_sys_arb small_nat)
    (fun (rs, g) ->
      let goal s = s = g mod rs.n in
      match (Mc.Explore.find ~goal (table_system rs), dfs_find ~goal rs.succ)
      with
      | Mc.Explore.Reached w, Some dfs_trace ->
          List.length w.Mc.Explore.trace <= List.length dfs_trace
      | Mc.Explore.Unreachable, None -> true
      | _ -> false)

(* --- monitors --- *)

let run_monitor (m : string Mc.Monitor.t) word =
  let q = List.fold_left m.Mc.Monitor.step m.Mc.Monitor.start word in
  m.Mc.Monitor.accepting q

let test_monitor_never () =
  let m = Mc.Monitor.never (String.equal "bad") in
  check Alcotest.bool "clean" false (run_monitor m [ "a"; "b" ]);
  check Alcotest.bool "hit" true (run_monitor m [ "a"; "bad" ]);
  check Alcotest.bool "latches" true (run_monitor m [ "bad"; "a" ])

let test_monitor_always () =
  let m = Mc.Monitor.always (String.equal "ok") in
  check Alcotest.bool "all ok" false (run_monitor m [ "ok"; "ok" ]);
  check Alcotest.bool "one off" true (run_monitor m [ "ok"; "nope" ])

let test_monitor_precedence () =
  let m =
    Mc.Monitor.precedence ~fault:(String.equal "fault") ~bad:(String.equal "bad")
  in
  check Alcotest.bool "bad before fault" true (run_monitor m [ "x"; "bad" ]);
  check Alcotest.bool "fault discharges" false
    (run_monitor m [ "fault"; "bad" ]);
  check Alcotest.bool "no bad" false (run_monitor m [ "x"; "fault" ])

let test_monitor_deadline () =
  let tick = String.equal "t" in
  let reset = String.equal "r" in
  let ok = String.equal "done" in
  let m = Mc.Monitor.deadline ~tick ~reset ~ok 3 in
  check Alcotest.bool "within deadline" false (run_monitor m [ "t"; "t"; "t" ]);
  check Alcotest.bool "past deadline" true
    (run_monitor m [ "t"; "t"; "t"; "t" ]);
  check Alcotest.bool "reset restarts" false
    (run_monitor m [ "t"; "t"; "r"; "t"; "t"; "t" ]);
  check Alcotest.bool "ok discharges" false
    (run_monitor m [ "t"; "t"; "t"; "done"; "t"; "t" ])

(* --- regular expressions --- *)

let sym c = Mc.Regex.atom (String.make 1 c) (fun l -> l = String.make 1 c)

let test_regex_matches () =
  let r = Mc.Regex.(seq (sym 'a') (star (sym 'b'))) in
  check Alcotest.bool "a" true (Mc.Regex.matches r [ "a" ]);
  check Alcotest.bool "abb" true (Mc.Regex.matches r [ "a"; "b"; "b" ]);
  check Alcotest.bool "b" false (Mc.Regex.matches r [ "b" ]);
  check Alcotest.bool "empty" false (Mc.Regex.matches r [])

let test_regex_alt_opt_plus () =
  let r = Mc.Regex.(alt (plus (sym 'a')) (opt (sym 'b'))) in
  check Alcotest.bool "eps (via opt)" true (Mc.Regex.matches r []);
  check Alcotest.bool "aa" true (Mc.Regex.matches r [ "a"; "a" ]);
  check Alcotest.bool "b" true (Mc.Regex.matches r [ "b" ]);
  check Alcotest.bool "ba" false (Mc.Regex.matches r [ "b"; "a" ])

let test_regex_repeat () =
  let r = Mc.Regex.repeat (sym 'a') 3 in
  check Alcotest.bool "aaa" true (Mc.Regex.matches r [ "a"; "a"; "a" ]);
  check Alcotest.bool "aa" false (Mc.Regex.matches r [ "a"; "a" ]);
  check Alcotest.bool "aaaa" false (Mc.Regex.matches r [ "a"; "a"; "a"; "a" ]);
  Alcotest.check_raises "negative" (Invalid_argument "Mc.Regex.repeat: negative count")
    (fun () -> ignore (Mc.Regex.repeat (sym 'a') (-1)))

let test_regex_empty_eps () =
  check Alcotest.bool "empty matches nothing" false
    (Mc.Regex.matches Mc.Regex.empty []);
  check Alcotest.bool "eps matches empty" true (Mc.Regex.matches Mc.Regex.eps []);
  check Alcotest.bool "eps only empty" false
    (Mc.Regex.matches Mc.Regex.eps [ "a" ])

let test_regex_compile_agrees () =
  let r =
    Mc.Regex.(
      seq (star (alt (sym 'a') (sym 'b'))) (seq (sym 'a') (sym 'b')))
  in
  let m = Mc.Regex.compile r in
  let words =
    [
      []; [ "a" ]; [ "a"; "b" ]; [ "b"; "a"; "b" ]; [ "a"; "a"; "a" ];
      [ "b"; "b"; "a"; "b" ];
    ]
  in
  List.iter
    (fun w ->
      let direct = Mc.Regex.matches r w in
      let via_monitor =
        let q = List.fold_left m.Mc.Monitor.step m.Mc.Monitor.start w in
        m.Mc.Monitor.accepting q
      in
      check Alcotest.bool
        (Printf.sprintf "agree on %s" (String.concat "" w))
        direct via_monitor)
    words

(* Random regex/word agreement between [matches] and [compile]. *)
let regex_gen : string Mc.Regex.t QCheck.arbitrary =
  let open QCheck.Gen in
  let letter = map (fun i -> Char.chr (97 + i)) (int_bound 2) in
  let rec gen depth =
    if depth = 0 then map sym letter
    else
      frequency
        [
          (2, map sym letter);
          (1, return Mc.Regex.eps);
          (2, map2 Mc.Regex.seq (gen (depth - 1)) (gen (depth - 1)));
          (2, map2 Mc.Regex.alt (gen (depth - 1)) (gen (depth - 1)));
          (1, map Mc.Regex.star (gen (depth - 1)));
        ]
  in
  QCheck.make
    ~print:(fun r -> Format.asprintf "%a" Mc.Regex.pp r)
    (gen 4)

let word_gen =
  QCheck.make
    ~print:(String.concat "")
    QCheck.Gen.(
      list_size (int_bound 6)
        (map (fun i -> String.make 1 (Char.chr (97 + i))) (int_bound 2)))

let prop_compile_agrees_matches =
  QCheck.Test.make ~name:"compiled monitor agrees with matches" ~count:300
    (QCheck.pair regex_gen word_gen) (fun (r, w) ->
      let m = Mc.Regex.compile r in
      let q = List.fold_left m.Mc.Monitor.step m.Mc.Monitor.start w in
      m.Mc.Monitor.accepting q = Mc.Regex.matches r w)

(* --- safety --- *)

let test_check_monitor () =
  let m = Mc.Monitor.never (String.equal "reset") in
  (match Mc.Safety.check_monitor (counter 3) m with
  | Mc.Safety.Violated trace ->
      check Alcotest.int "shortest violation" 3 (List.length trace)
  | _ -> Alcotest.fail "expected violation");
  match Mc.Safety.check_monitor (counter 3) (Mc.Monitor.never (String.equal "boom")) with
  | Mc.Safety.Holds -> ()
  | _ -> Alcotest.fail "expected holds"

let test_check_forbidden () =
  (* "two incs then a reset" is impossible on a 2-counter. *)
  let r =
    Mc.Regex.(
      seq (star any)
        (seq_list
           [
             atom "inc" (String.equal "inc");
             atom "inc" (String.equal "inc");
             atom "reset" (String.equal "reset");
           ]))
  in
  (match Mc.Safety.check_forbidden (counter 3) r with
  | Mc.Safety.Violated trace -> check Alcotest.int "len" 3 (List.length trace)
  | _ -> Alcotest.fail "expected violation");
  match Mc.Safety.check_forbidden (counter 2) r with
  | Mc.Safety.Holds -> ()
  | _ -> Alcotest.fail "expected holds"

let test_check_state () =
  (match Mc.Safety.check_state (counter 5) (fun s -> s = 4) with
  | Mc.Safety.Violated trace -> check Alcotest.int "len" 4 (List.length trace)
  | _ -> Alcotest.fail "expected violation");
  match Mc.Safety.check_state (counter 5) (fun s -> s > 5) with
  | Mc.Safety.Holds -> ()
  | _ -> Alcotest.fail "expected holds"

let test_check_unknown () =
  match Mc.Safety.check_state ~max_states:3 (counter 10) (fun s -> s = 9) with
  | Mc.Safety.Unknown 3 -> ()
  | _ -> Alcotest.fail "expected Unknown 3"

(* Truncating the product space must surface as Unknown (never Holds) for
   every checker entry point, including the parallel engine. *)
let test_check_unknown_monitor () =
  let m = Mc.Monitor.never (String.equal "boom") in
  (match Mc.Safety.check_monitor ~max_states:3 (counter 10) m with
  | Mc.Safety.Unknown 3 -> ()
  | _ -> Alcotest.fail "expected Unknown 3 from check_monitor");
  match Mc.Safety.check_monitor ~max_states:3 ~domains:2 (counter 10) m with
  | Mc.Safety.Unknown 3 -> ()
  | _ -> Alcotest.fail "expected Unknown 3 from parallel check_monitor"

let test_check_unknown_forbidden () =
  (* The violation needs three steps; a two-state product bound cannot
     decide it. *)
  let r =
    Mc.Regex.(
      seq (star any)
        (seq_list
           [
             atom "inc" (String.equal "inc");
             atom "inc" (String.equal "inc");
             atom "reset" (String.equal "reset");
           ]))
  in
  (match Mc.Safety.check_forbidden ~max_states:2 (counter 3) r with
  | Mc.Safety.Unknown 2 -> ()
  | _ -> Alcotest.fail "expected Unknown 2 from check_forbidden");
  (* A sufficient bound restores the definite verdict. *)
  match Mc.Safety.check_forbidden ~max_states:100 (counter 3) r with
  | Mc.Safety.Violated trace -> check Alcotest.int "len" 3 (List.length trace)
  | _ -> Alcotest.fail "expected Violated under a sufficient bound"

let test_holds_helper () =
  check Alcotest.bool "holds" true (Mc.Safety.holds Mc.Safety.Holds);
  check Alcotest.bool "violated" false (Mc.Safety.holds (Mc.Safety.Violated []));
  check Alcotest.bool "unknown" false (Mc.Safety.holds (Mc.Safety.Unknown 1))

let tests =
  ( "mc",
    [
      Alcotest.test_case "space of a counter" `Quick test_space_counter;
      Alcotest.test_case "space respects bound" `Quick test_space_bound;
      Alcotest.test_case "count" `Quick test_count;
      Alcotest.test_case "find shortest witness" `Quick test_find_shortest;
      Alcotest.test_case "find unreachable" `Quick test_find_unreachable;
      Alcotest.test_case "find initial state" `Quick test_find_initial;
      Alcotest.test_case "find bound hit" `Quick test_find_bound;
      QCheck_alcotest.to_alcotest prop_truncation_prefix;
      Alcotest.test_case "truncation contract on a tree" `Quick
        test_truncation_tree;
      Alcotest.test_case "exact bound is complete" `Quick
        test_bound_exact_is_complete;
      Alcotest.test_case "find at the bound boundary" `Quick
        test_find_bound_boundary;
      Alcotest.test_case "find takes the diamond shortcut" `Quick
        test_find_diamond_shortest;
      QCheck_alcotest.to_alcotest prop_bfs_no_longer_than_dfs;
      Alcotest.test_case "monitor never" `Quick test_monitor_never;
      Alcotest.test_case "monitor always" `Quick test_monitor_always;
      Alcotest.test_case "monitor precedence" `Quick test_monitor_precedence;
      Alcotest.test_case "monitor deadline" `Quick test_monitor_deadline;
      Alcotest.test_case "regex matches" `Quick test_regex_matches;
      Alcotest.test_case "regex alt/opt/plus" `Quick test_regex_alt_opt_plus;
      Alcotest.test_case "regex repeat" `Quick test_regex_repeat;
      Alcotest.test_case "regex empty/eps" `Quick test_regex_empty_eps;
      Alcotest.test_case "compile agrees with matches" `Quick
        test_regex_compile_agrees;
      QCheck_alcotest.to_alcotest prop_compile_agrees_matches;
      Alcotest.test_case "check_monitor" `Quick test_check_monitor;
      Alcotest.test_case "check_forbidden" `Quick test_check_forbidden;
      Alcotest.test_case "check_state" `Quick test_check_state;
      Alcotest.test_case "check unknown on bound" `Quick test_check_unknown;
      Alcotest.test_case "check_monitor unknown on bound" `Quick
        test_check_unknown_monitor;
      Alcotest.test_case "check_forbidden unknown on bound" `Quick
        test_check_unknown_forbidden;
      Alcotest.test_case "holds helper" `Quick test_holds_helper;
    ] )

(* --- CTL --- *)

(* A small graph with a trap: 0 -a-> 1 -b-> 2 (deadlock), 0 -c-> 0. *)
let ctl_graph =
  Lts.Graph.make ~num_states:3 ~initial:0
    [ (0, "a", 1); (1, "b", 2); (0, "c", 0) ]

let bset = Alcotest.(list bool)

let test_ctl_atoms_and_can () =
  let is s = Mc.Ctl.atom "is" (fun x -> x = s) in
  check bset "atom" [ false; true; false ]
    (Array.to_list (Mc.Ctl.eval ctl_graph (is 1)));
  check bset "can b" [ false; true; false ]
    (Array.to_list (Mc.Ctl.eval ctl_graph (Mc.Ctl.can "b" (String.equal "b"))))

let test_ctl_ef_ag () =
  let at2 = Mc.Ctl.atom "at2" (fun s -> s = 2) in
  check bset "EF at2" [ true; true; true ]
    (Array.to_list (Mc.Ctl.eval ctl_graph (Mc.Ctl.EF at2)));
  (* AG (EF at2): state 2 is a deadlock satisfying at2, all can reach it *)
  check Alcotest.bool "AG EF holds" true
    (Mc.Ctl.holds ctl_graph (Mc.Ctl.AG (Mc.Ctl.EF at2)));
  (* AG at0 fails immediately *)
  check Alcotest.bool "AG at0 fails" false
    (Mc.Ctl.holds ctl_graph (Mc.Ctl.AG (Mc.Ctl.atom "at0" (fun s -> s = 0))))

let test_ctl_eg_af () =
  let at0 = Mc.Ctl.atom "at0" (fun s -> s = 0) in
  (* The c-self-loop keeps an infinite run inside {0}. *)
  check Alcotest.bool "EG at0" true (Mc.Ctl.holds ctl_graph (Mc.Ctl.EG at0));
  (* AF at2 is false at 0 because of the same loop. *)
  let at2 = Mc.Ctl.atom "at2" (fun s -> s = 2) in
  check Alcotest.bool "AF at2 false" false
    (Mc.Ctl.holds ctl_graph (Mc.Ctl.AF at2));
  (* Without the loop AF holds. *)
  let chain =
    Lts.Graph.make ~num_states:3 ~initial:0 [ (0, "a", 1); (1, "b", 2) ]
  in
  check Alcotest.bool "AF on a chain" true (Mc.Ctl.holds chain (Mc.Ctl.AF at2))

let test_ctl_eu_au () =
  let at0 = Mc.Ctl.atom "at0" (fun s -> s = 0) in
  let at1 = Mc.Ctl.atom "at1" (fun s -> s = 1) in
  check Alcotest.bool "E[at0 U at1]" true
    (Mc.Ctl.holds ctl_graph (Mc.Ctl.EU (at0, at1)));
  (* A[at0 U at1] fails: the c-loop can avoid state 1 forever. *)
  check Alcotest.bool "A[at0 U at1] fails" false
    (Mc.Ctl.holds ctl_graph (Mc.Ctl.AU (at0, at1)))

let test_ctl_deadlock_semantics () =
  (* In the deadlock state: EX anything is false, AX anything true. *)
  let ex = Mc.Ctl.eval ctl_graph (Mc.Ctl.EX Mc.Ctl.True) in
  check Alcotest.bool "EX true at deadlock" false ex.(2);
  let ax = Mc.Ctl.eval ctl_graph (Mc.Ctl.AX Mc.Ctl.False) in
  check Alcotest.bool "AX false at deadlock" true ax.(2);
  (* EG needs an infinite path, so it is false at a deadlock even for
     [true]; dually AF is vacuously true there even for [false].  This is
     where CTL diverges from LTL under the stutter-extension policy (see
     test_ltl), which treats a deadlocked run as observable. *)
  let eg = Mc.Ctl.eval ctl_graph (Mc.Ctl.EG Mc.Ctl.True) in
  check Alcotest.bool "EG true at deadlock" false eg.(2);
  check Alcotest.bool "EG true on the c-loop" true eg.(0);
  let af = Mc.Ctl.eval ctl_graph (Mc.Ctl.AF Mc.Ctl.False) in
  check Alcotest.bool "AF false vacuous at deadlock" true af.(2);
  check Alcotest.bool "AF false elsewhere" false af.(0)

let test_ctl_witness () =
  let at2 = Mc.Ctl.atom "at2" (fun s -> s = 2) in
  match Mc.Ctl.witness_ef ctl_graph at2 with
  | Some w -> check Alcotest.(list string) "path" [ "a"; "b" ] w
  | None -> Alcotest.fail "expected a witness"

let ctl_tests =
  [
    Alcotest.test_case "ctl atoms and can" `Quick test_ctl_atoms_and_can;
    Alcotest.test_case "ctl EF/AG" `Quick test_ctl_ef_ag;
    Alcotest.test_case "ctl EG/AF" `Quick test_ctl_eg_af;
    Alcotest.test_case "ctl EU/AU" `Quick test_ctl_eu_au;
    Alcotest.test_case "ctl deadlock semantics" `Quick test_ctl_deadlock_semantics;
    Alcotest.test_case "ctl EF witness" `Quick test_ctl_witness;
  ]

let tests = (fst tests, snd tests @ ctl_tests)
