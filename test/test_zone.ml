(* The zone engine: DBM algebra units, dense-time semantics checks
   (strict guards, urgency, invariants, clock-read case splits), and
   the discrete-vs-zone agreement gate — on random closed-constraint
   networks and on all six shipped heartbeat variants, the zone
   engine's reachability verdict must equal the discrete explorer's,
   and every zone counterexample must replay concretely in the
   discrete semantics by guided trace embedding. *)

let check = Alcotest.check

module M = Ta.Model
module E = Ta.Expr
module S = Ta.Semantics
module D = Zone.Dbm

(* --- DBM algebra ---------------------------------------------------- *)

(* dim 3: clocks x (index 1) and y (index 2) *)
let ddim = 3

let test_dbm_zero_up_reset () =
  let z = D.zero ~dim:ddim in
  check Alcotest.int "lo x" 0 (D.clock_lo ~dim:ddim z 1);
  check (Alcotest.option Alcotest.int) "hi x" (Some 0)
    (D.clock_hi ~dim:ddim z 1);
  D.up ~dim:ddim z;
  check (Alcotest.option Alcotest.int) "hi x after up" None
    (D.clock_hi ~dim:ddim z 1);
  check Alcotest.int "lo x after up" 0 (D.clock_lo ~dim:ddim z 1);
  (* x and y advanced together: x - y still pinned to 0 *)
  check Alcotest.int "x-y" (D.bnd 0 ~strict:false) z.((1 * ddim) + 2);
  D.reset ~dim:ddim z 1;
  check (Alcotest.option Alcotest.int) "hi x after reset" (Some 0)
    (D.clock_hi ~dim:ddim z 1);
  check (Alcotest.option Alcotest.int) "hi y untouched" None
    (D.clock_hi ~dim:ddim z 2)

let test_dbm_constrain () =
  let z = D.zero ~dim:ddim in
  D.up ~dim:ddim z;
  Alcotest.(check bool) "x <= 5 ok" true
    (D.constrain ~dim:ddim z 1 0 (D.bnd 5 ~strict:false));
  Alcotest.(check bool) "x >= 2 ok" true
    (D.constrain ~dim:ddim z 0 1 (D.bnd (-2) ~strict:false));
  check Alcotest.int "lo" 2 (D.clock_lo ~dim:ddim z 1);
  check (Alcotest.option Alcotest.int) "hi" (Some 5) (D.clock_hi ~dim:ddim z 1);
  (* clocks advance together, so y inherits the band through diagonals *)
  check Alcotest.int "lo y" 2 (D.clock_lo ~dim:ddim z 2);
  Alcotest.(check bool) "x <= 1 empties" false
    (D.constrain ~dim:ddim z 1 0 (D.bnd 1 ~strict:false))

let test_dbm_strict_bounds () =
  let z = D.zero ~dim:ddim in
  D.up ~dim:ddim z;
  Alcotest.(check bool) "x > 2" true
    (D.constrain ~dim:ddim z 0 1 (D.bnd (-2) ~strict:true));
  Alcotest.(check bool) "x < 3" true
    (D.constrain ~dim:ddim z 1 0 (D.bnd 3 ~strict:true));
  (* (2, 3) is non-empty in dense time but holds no integer point *)
  check Alcotest.int "integer lo" 3 (D.clock_lo ~dim:ddim z 1);
  check (Alcotest.option Alcotest.int) "integer hi" (Some 2)
    (D.clock_hi ~dim:ddim z 1)

let test_dbm_includes_intersect () =
  let band lo hi =
    let z = D.zero ~dim:ddim in
    D.up ~dim:ddim z;
    assert (D.constrain ~dim:ddim z 0 1 (D.bnd (-lo) ~strict:false));
    assert (D.constrain ~dim:ddim z 1 0 (D.bnd hi ~strict:false));
    z
  in
  let wide = band 0 5 and narrow = band 2 5 in
  Alcotest.(check bool) "wide includes narrow" true
    (D.includes ~dim:ddim wide narrow);
  Alcotest.(check bool) "narrow excludes wide" false
    (D.includes ~dim:ddim narrow wide);
  let a = band 0 5 and b = band 3 8 in
  Alcotest.(check bool) "intersect non-empty" true (D.intersect ~dim:ddim a b);
  check Alcotest.int "meet lo" 3 (D.clock_lo ~dim:ddim a 1);
  check (Alcotest.option Alcotest.int) "meet hi" (Some 5)
    (D.clock_hi ~dim:ddim a 1);
  let c = band 0 2 and d = band 6 9 in
  Alcotest.(check bool) "disjoint intersect empty" false
    (D.intersect ~dim:ddim c d)

let test_dbm_extrapolate () =
  let z = D.zero ~dim:ddim in
  D.up ~dim:ddim z;
  assert (D.constrain ~dim:ddim z 0 1 (D.bnd (-10) ~strict:false));
  assert (D.constrain ~dim:ddim z 0 2 (D.bnd (-10) ~strict:false));
  let l = [| -1; 2; 2 |] and u = [| -1; 2; 2 |] in
  D.extrapolate_lu ~dim:ddim z ~l ~u;
  (* lower bounds beyond every upper guard weaken to (> 2) *)
  check Alcotest.int "lo weakened" 3 (D.clock_lo ~dim:ddim z 1);
  check (Alcotest.option Alcotest.int) "hi stays open" None
    (D.clock_hi ~dim:ddim z 1)

(* constrain (incremental re-canonicalisation) must agree with a full
   Floyd-Warshall re-close from scratch *)
let prop_constrain_matches_close =
  let open QCheck in
  let bound_gen =
    Gen.oneof
      [
        Gen.return D.inf;
        Gen.map2 (fun v s -> D.bnd v ~strict:s) (Gen.int_range (-4) 4)
          Gen.bool;
      ]
  in
  let gen =
    Gen.map2
      (fun entries (i, j, b) -> (entries, i, j, b))
      (Gen.array_size (Gen.return (ddim * ddim)) bound_gen)
      (Gen.triple (Gen.int_bound (ddim - 1)) (Gen.int_bound (ddim - 1))
         bound_gen)
  in
  Test.make ~name:"incremental constrain = set entry + full close" ~count:500
    (make gen) (fun (entries, i, j, b) ->
      assume (i <> j && b <> D.inf);
      let m = Array.copy entries in
      for k = 0 to ddim - 1 do
        m.((k * ddim) + k) <- D.bnd 0 ~strict:false;
        (* keep clocks non-negative so rows stay zone-like *)
        if k > 0 && m.(k) > D.bnd 0 ~strict:false then
          m.(k) <- D.bnd 0 ~strict:false
      done;
      assume (D.close ~dim:ddim m);
      let incr = D.copy m and full = D.copy m in
      let ok_incr = D.constrain ~dim:ddim incr i j b in
      full.((i * ddim) + j) <- min full.((i * ddim) + j) b;
      let ok_full = D.close ~dim:ddim full in
      ok_incr = ok_full && ((not ok_incr) || D.equal incr full))

(* --- tiny dense-time semantics checks ------------------------------- *)

let net ?(vars = []) ?(clocks = []) ?(chans = []) automata =
  { M.vars; clocks; chans; automata }

let auto ?(init = "A") name locations edges =
  { M.auto_name = name; locations; edges; init_loc = init }

let one_clock ?(cap = 5) () = [ { M.clock_name = "k"; cap } ]

let reaches model ~auto:a ~loc =
  let z = Zone.Sym.compile model in
  let goal =
    Zone.Sym.bad_of z (S.loc_is (Zone.Sym.net z) ~auto:a ~loc)
  in
  match Zone.Reach.find z ~goal with
  | Mc.Explore.Reached w -> Some w.Mc.Explore.trace
  | Mc.Explore.Unreachable -> None
  | _ -> Alcotest.fail "unexpected zone verdict"

let test_strict_guard () =
  let m g =
    net ~clocks:(one_clock ())
      [
        auto "A"
          [ M.loc "A"; M.loc "B" ]
          [ M.edge ~src:"A" ~dst:"B" ~guard:g ~act:"go" () ];
      ]
  in
  (match reaches (m E.(clk "k" > i 2)) ~auto:"A" ~loc:"B" with
  | Some [ S.Act "go" ] -> ()
  | _ -> Alcotest.fail "strict guard should be reachable in dense time");
  (* (2, 3) has no integer point but is dense-reachable: strictly more
     behaviour than the discrete engine *)
  let open_band = m E.(clk "k" > i 2 && clk "k" < i 3) in
  Alcotest.(check bool) "open band dense-reachable" true
    (reaches open_band ~auto:"A" ~loc:"B" <> None);
  let t = S.compile open_band in
  (match
     Mc.Explore.find ~goal:(S.loc_is t ~auto:"A" ~loc:"B") (S.system t)
   with
  | Mc.Explore.Unreachable -> ()
  | _ -> Alcotest.fail "open band must be discretely unreachable")

let test_urgent_blocks_delay () =
  let m =
    net ~clocks:(one_clock ())
      [
        auto "A"
          [ M.loc "A"; M.loc ~kind:M.Urgent "U"; M.loc "B" ]
          [
            M.edge ~src:"A" ~dst:"U" ~updates:[ M.Reset "k" ] ~act:"in" ();
            M.edge ~src:"U" ~dst:"B" ~guard:E.(clk "k" >= i 1) ~act:"out" ();
          ];
      ]
  in
  Alcotest.(check bool) "no delay inside urgent" true
    (reaches m ~auto:"A" ~loc:"B" = None)

let test_invariant_bounds_delay () =
  let m g =
    net ~clocks:(one_clock ())
      [
        auto "A"
          [ M.loc ~invariant:E.(clk "k" <= i 2) "A"; M.loc "B" ]
          [ M.edge ~src:"A" ~dst:"B" ~guard:g ~act:"go" () ];
      ]
  in
  Alcotest.(check bool) "cannot outwait the invariant" true
    (reaches (m E.(clk "k" >= i 3)) ~auto:"A" ~loc:"B" = None);
  Alcotest.(check bool) "boundary reachable" true
    (reaches (m E.(clk "k" >= i 2)) ~auto:"A" ~loc:"B" <> None)

(* x := k forks one branch per integer value of k, saturating at the
   cap — exactly the discrete semantics' saturation *)
let test_clock_read_split () =
  let m =
    net
      ~vars:[ M.scalar "x" 0 ]
      ~clocks:(one_clock ~cap:3 ())
      [
        auto "A"
          [ M.loc "A"; M.loc "B" ]
          [
            M.edge ~src:"A" ~dst:"B"
              ~updates:[ M.Assign (M.Scalar "x", E.clk "k") ]
              ~act:"read" ();
          ];
      ]
  in
  let z = Zone.Sym.compile m in
  let zn = Zone.Sym.net z in
  let reach_x v =
    let goal =
      Zone.Sym.bad_of z (fun c ->
          S.var zn "x" c = v && S.loc_is zn ~auto:"A" ~loc:"B" c)
    in
    match Zone.Reach.find z ~goal with
    | Mc.Explore.Reached _ -> true
    | Mc.Explore.Unreachable -> false
    | _ -> Alcotest.fail "unexpected zone verdict"
  in
  Alcotest.(check bool) "x = 0" true (reach_x 0);
  Alcotest.(check bool) "x = 2" true (reach_x 2);
  Alcotest.(check bool) "x = 3 (cap, saturated)" true (reach_x 3);
  Alcotest.(check bool) "x = 4 impossible" false (reach_x 4);
  Alcotest.(check bool) "x = 5 impossible" false (reach_x 5)

let test_unsupported_constraints () =
  let diag =
    net
      ~clocks:[ { M.clock_name = "k"; cap = 5 }; { M.clock_name = "l"; cap = 5 } ]
      [
        auto "A" [ M.loc "A" ]
          [ M.edge ~src:"A" ~dst:"A" ~guard:E.(clk "k" <= clk "l") () ];
      ]
  in
  (try
     ignore (Zone.Sym.compile diag : Zone.Sym.t);
     Alcotest.fail "diagonal constraint must be rejected"
   with Zone.Sym.Unsupported msg ->
     Alcotest.(check bool) "message names the edge" true
       (String.length msg > 0));
  let diags = Zone.Sym.diagnostics diag in
  Alcotest.(check bool) "lint flags the diagonal" true
    (List.exists
       (fun (d : Lint_report.diag) ->
         d.Lint_report.code = "TA-ZONE-DIAGONAL"
         && d.Lint_report.severity = Lint_report.Error)
       diags)

(* --- discrete vs zone agreement ------------------------------------- *)

type verdict_cmp = {
  reached : bool;
  zone_trace : S.label list option;
}

let discrete_reaches ?(max_states = 200_000) t goal =
  match Mc.Explore.find ~max_states ~goal (S.system t) with
  | Mc.Explore.Reached _ -> Some true
  | Mc.Explore.Unreachable -> Some false
  | Mc.Explore.Bound_hit _ | Mc.Explore.Exhausted _ -> None

let zone_reaches ?(max_states = 200_000) z goal =
  match Zone.Reach.find ~max_states z ~goal with
  | Mc.Explore.Reached w -> Some { reached = true; zone_trace = Some w.Mc.Explore.trace }
  | Mc.Explore.Unreachable -> Some { reached = false; zone_trace = None }
  | Mc.Explore.Bound_hit _ | Mc.Explore.Exhausted _ -> None

(* The agreement check for one model + one predicate over the discrete
   part: verdict parity, and zone counterexamples must replay in the
   discrete semantics (guided by the action labels, delays free). *)
let agree ?max_states model (pred : S.t -> S.config -> bool) =
  let td = S.compile model in
  let z = Zone.Sym.compile model in
  let d = discrete_reaches ?max_states td (pred td) in
  let zv = zone_reaches ?max_states z (Zone.Sym.bad_of z (pred (Zone.Sym.net z))) in
  match (d, zv) with
  | Some dr, Some { reached = zr; zone_trace } ->
      if dr <> zr then
        Alcotest.failf "verdict mismatch: discrete %b, zone %b" dr zr;
      (match zone_trace with
      | Some trace ->
          if
            not
              (Zone.Reach.guided_replay (S.system td) ~trace ~goal:(pred td))
          then Alcotest.fail "zone counterexample does not replay discretely"
      | None -> ());
      true
  | _ -> false (* bound hit: nothing to compare *)

(* random closed-constraint networks: two automata over a shared
   variable and clock, binary + broadcast sync, clock guards on
   closed comparisons only, clock-read updates *)
let zone_random_network : M.t QCheck.arbitrary =
  let open QCheck.Gen in
  let data_guard = oneofl [ E.True; E.(v "x" = i 0); E.(v "x" = i 1) ] in
  let any_guard =
    oneofl
      [
        E.True;
        E.(v "x" = i 0);
        E.(v "x" = i 1);
        E.(clk "k" <= i 2);
        E.(clk "k" >= i 1);
        E.(clk "k" = i 2);
        E.(v "x" = i 0 && clk "k" >= i 1);
      ]
  in
  let updates =
    oneofl
      [
        [];
        [ M.Assign (M.Scalar "x", E.i 1) ];
        [ M.Assign (M.Scalar "x", E.i 0) ];
        [ M.Reset "k" ];
        [ M.Assign (M.Scalar "x", E.clk "k") ];
        [ M.Assign (M.Scalar "x", E.clk "k"); M.Reset "k" ];
      ]
  in
  let sync_gen =
    frequency
      [
        (4, return M.Tau);
        (1, return (M.Send "c"));
        (1, return (M.Recv "c"));
        (1, return (M.Send "bc"));
        (1, return (M.Recv "bc"));
      ]
  in
  let edge_gen locs =
    let loc_name i = Printf.sprintf "L%d" i in
    int_bound (locs - 1) >>= fun src ->
    int_bound (locs - 1) >>= fun dst ->
    sync_gen >>= fun sync ->
    (* broadcast receivers must have data-only guards *)
    (match sync with M.Recv "bc" -> data_guard | _ -> any_guard)
    >>= fun g ->
    updates >>= fun us ->
    return
      (M.edge ~src:(loc_name src) ~dst:(loc_name dst) ~guard:g ~updates:us
         ~sync
         ~act:(Printf.sprintf "e%d%d" src dst)
         ())
  in
  let automaton_gen name =
    int_range 1 3 >>= fun locs ->
    list_size (int_bound 5) (edge_gen locs) >>= fun edges ->
    return
      {
        M.auto_name = name;
        locations = List.init locs (fun i -> M.loc (Printf.sprintf "L%d" i));
        edges;
        init_loc = "L0";
      }
  in
  let network_gen =
    automaton_gen "A" >>= fun a ->
    automaton_gen "B" >>= fun b ->
    return
      {
        M.vars = [ M.scalar "x" 0 ];
        clocks = [ { M.clock_name = "k"; cap = 3 } ];
        chans = [ M.chan "c"; M.chan ~broadcast:true "bc" ];
        automata = [ a; b ];
      }
  in
  QCheck.make
    ~print:(fun m ->
      Format.asprintf "%d+%d edges"
        (List.length (List.nth m.M.automata 0).M.edges)
        (List.length (List.nth m.M.automata 1).M.edges))
    network_gen

let prop_agreement_random =
  QCheck.Test.make
    ~name:"discrete and zone reachability verdicts agree (closed TA)"
    ~count:150 zone_random_network (fun model ->
      (* goal: A parked in its last location with x = 1 *)
      let last =
        Printf.sprintf "L%d"
          (List.length (List.nth model.M.automata 0).M.locations - 1)
      in
      let pred t =
        let in_last = S.loc_is t ~auto:"A" ~loc:last in
        let x = S.var t "x" in
        fun c -> in_last c && x c = 1
      in
      agree ~max_states:50_000 model pred)

(* all six heartbeat variants, R1-R3, small parameters.  Expanding and
   dynamic get n = 1: their discrete spaces at n = 2 exceed two million
   states while the zone graph stays under 300k — covered by the bench
   workload, not a unit test. *)
let variant_parity ?(n = 2) variant () =
  let p = Heartbeat.Params.make ~tmin:1 ~tmax:2 ~n () in
  List.iter
    (fun r ->
      let model =
        Heartbeat.Ta_models.build
          ~with_r1_monitors:(Heartbeat.Requirements.needs_monitors r)
          variant p
      in
      let pred t = Heartbeat.Requirements.bad_state variant p t r in
      if not (agree model pred) then
        Alcotest.failf "%s/%s: state bound hit"
          (Heartbeat.Ta_models.variant_name variant)
          (Heartbeat.Requirements.name r))
    Heartbeat.Requirements.all

(* subsumption: same verdicts, never more stored states, and on the
   heartbeat models it must actually discard something *)
let test_subsumption_shrinks () =
  let p = Heartbeat.Params.make ~tmin:1 ~tmax:3 () in
  let model = Heartbeat.Ta_models.build Heartbeat.Ta_models.Binary p in
  let z = Zone.Sym.compile model in
  let s_on = Zone.Reach.new_stats () and s_off = Zone.Reach.new_stats () in
  let n_on, c_on = Zone.Reach.count ~subsume:true ~stats:s_on z in
  let n_off, c_off = Zone.Reach.count ~subsume:false ~stats:s_off z in
  Alcotest.(check bool) "both complete" true (c_on && c_off);
  Alcotest.(check bool) "subsumption never stores more" true (n_on <= n_off);
  Alcotest.(check bool) "subsumption discards something" true
    (s_on.Zone.Reach.subsumed > 0)

let test_guided_replay_rejects_garbage () =
  let p = Heartbeat.Params.make ~tmin:1 ~tmax:2 () in
  let model = Heartbeat.Ta_models.build Heartbeat.Ta_models.Binary p in
  let t = S.compile model in
  Alcotest.(check bool) "bogus trace rejected" false
    (Zone.Reach.guided_replay (S.system t)
       ~trace:[ S.Act "no-such-action" ]
       ~goal:(fun _ -> true))

let test_heartbeat_models_in_fragment () =
  let p = Heartbeat.Params.make ~tmin:1 ~tmax:2 ~n:2 () in
  List.iter
    (fun v ->
      let model = Heartbeat.Ta_models.build ~with_r1_monitors:true v p in
      let diags = Zone.Sym.diagnostics model in
      List.iter
        (fun (d : Lint_report.diag) ->
          if d.Lint_report.severity = Lint_report.Error then
            Alcotest.failf "%s: unexpected zone error %s at %s: %s"
              (Heartbeat.Ta_models.variant_name v)
              d.Lint_report.code d.Lint_report.where d.Lint_report.message)
        diags)
    Heartbeat.Ta_models.all_variants

(* --- the Fontana-Cleaveland workload -------------------------------- *)

let test_fc_verdicts () =
  List.iter
    (fun (s : Fc.spec) ->
      let z = Zone.Sym.compile s.Fc.model in
      let goal = Zone.Sym.bad_of z (Fc.bad_predicate s (Zone.Sym.net z)) in
      match (Zone.Reach.find z ~goal, s.Fc.safe) with
      | Mc.Explore.Unreachable, true | Mc.Explore.Reached _, false -> ()
      | Mc.Explore.Unreachable, false ->
          Alcotest.failf "%s: expected unsafe, engine says safe" s.Fc.fc_name
      | Mc.Explore.Reached _, true ->
          Alcotest.failf "%s: expected safe, engine found a violation"
            s.Fc.fc_name
      | _ -> Alcotest.failf "%s: bound hit" s.Fc.fc_name)
    Fc.all

let test_fc_not_vacuous () =
  (* the safety verdicts mean something: the protocol machinery is
     exercised (collisions happen, tokens travel, gates cycle) *)
  List.iter
    (fun (name, auto, loc) ->
      match Fc.find name with
      | None -> Alcotest.failf "unknown benchmark %s" name
      | Some s ->
          let z = Zone.Sym.compile s.Fc.model in
          let goal =
            Zone.Sym.bad_of z (S.loc_is (Zone.Sym.net z) ~auto ~loc)
          in
          (match Zone.Reach.find z ~goal with
          | Mc.Explore.Reached _ -> ()
          | _ -> Alcotest.failf "%s: %s.%s should be reachable" name auto loc))
    [
      ("fischer", "P1", "CS");
      ("fischer", "P2", "CS");
      ("csma", "Bus", "Collision");
      ("csma", "S1", "Retry");
      ("fddi", "S2", "Sync");
      ("grc", "Train1", "In");
      ("grc", "Gate", "Raising");
      ("leader", "C1", "Leader");
    ]

let test_fc_xta_roundtrip () =
  (* the committed examples/fc/*.xta files are exactly this printout,
     and the parser reads them back verbatim (the make-zone gate diffs
     the files themselves) *)
  List.iter
    (fun (s : Fc.spec) ->
      let txt = Ta.Xta.to_string s.Fc.model in
      check Alcotest.string s.Fc.fc_name txt
        (Ta.Xta.to_string (Ta.Xta.parse txt)))
    Fc.all

let test_fc_strictness_matters () =
  (* the only difference between fischer and fischer-broken is > vs >=
     on the critical-section guard; the verdict flips *)
  match (Fc.find "fischer", Fc.find "fischer-broken") with
  | Some good, Some bad ->
      Alcotest.(check bool) "verdicts differ" true (good.Fc.safe <> bad.Fc.safe)
  | _ -> Alcotest.fail "registry incomplete"

let tests =
  ( "zone",
    [
      Alcotest.test_case "dbm zero/up/reset" `Quick test_dbm_zero_up_reset;
      Alcotest.test_case "dbm constrain" `Quick test_dbm_constrain;
      Alcotest.test_case "dbm strict bounds" `Quick test_dbm_strict_bounds;
      Alcotest.test_case "dbm includes/intersect" `Quick
        test_dbm_includes_intersect;
      Alcotest.test_case "dbm extrapolation" `Quick test_dbm_extrapolate;
      QCheck_alcotest.to_alcotest prop_constrain_matches_close;
      Alcotest.test_case "strict guards (dense only)" `Quick test_strict_guard;
      Alcotest.test_case "urgent blocks delay" `Quick test_urgent_blocks_delay;
      Alcotest.test_case "invariant bounds delay" `Quick
        test_invariant_bounds_delay;
      Alcotest.test_case "clock-read case split" `Quick test_clock_read_split;
      Alcotest.test_case "unsupported constraints rejected" `Quick
        test_unsupported_constraints;
      QCheck_alcotest.to_alcotest prop_agreement_random;
      Alcotest.test_case "variant parity: binary" `Quick
        (variant_parity Heartbeat.Ta_models.Binary);
      Alcotest.test_case "variant parity: revised" `Quick
        (variant_parity Heartbeat.Ta_models.Revised);
      Alcotest.test_case "variant parity: two-phase" `Quick
        (variant_parity Heartbeat.Ta_models.Two_phase);
      Alcotest.test_case "variant parity: static" `Quick
        (variant_parity Heartbeat.Ta_models.Static);
      Alcotest.test_case "variant parity: expanding" `Quick
        (variant_parity ~n:1 Heartbeat.Ta_models.Expanding);
      Alcotest.test_case "variant parity: dynamic" `Quick
        (variant_parity ~n:1 Heartbeat.Ta_models.Dynamic);
      Alcotest.test_case "subsumption shrinks the graph" `Quick
        test_subsumption_shrinks;
      Alcotest.test_case "guided replay rejects garbage" `Quick
        test_guided_replay_rejects_garbage;
      Alcotest.test_case "heartbeat models inside the zone fragment" `Quick
        test_heartbeat_models_in_fragment;
      Alcotest.test_case "fc benchmark verdicts" `Quick test_fc_verdicts;
      Alcotest.test_case "fc benchmarks not vacuous" `Quick test_fc_not_vacuous;
      Alcotest.test_case "fc xta round-trip" `Quick test_fc_xta_roundtrip;
      Alcotest.test_case "fc strictness matters" `Quick
        test_fc_strictness_matters;
    ] )
