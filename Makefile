DUNE ?= dune

.PHONY: all build test bench bench-parallel faults lint ltl por par resilience slice zone clean fmt

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# Full benchmark run: table regeneration check, parallel-exploration
# report, then the bechamel micro-benchmarks.
bench:
	$(DUNE) exec bench/main.exe

# Deterministic fault-injection campaign gate: the fixed variants must
# survive the default adversary with zero violations, the unfixed ones
# must be refuted (with a shrunk minimal schedule) at a table F point,
# and the JSON report must reproduce byte-identically.
faults:
	$(DUNE) exec bin/hbfault.exe -- smoke

# Static-analysis gate: every shipped model must lint clean under
# --strict (warnings gate too; infos do not), and the JSON report must
# reproduce byte-identically across two runs.
lint:
	$(DUNE) exec bin/hblint.exe -- --strict
	$(DUNE) exec bin/hblint.exe -- --json > _build/hblint-1.json
	$(DUNE) exec bin/hblint.exe -- --json > _build/hblint-2.json
	cmp _build/hblint-1.json _build/hblint-2.json

# Liveness gate: on every variant at its race point the fixed model
# satisfies the R1-R3 liveness formulations under weak fairness, the
# unfixed model is refuted on R2/R3 with a concrete lasso, both
# emptiness engines agree, and the JSON report must reproduce
# byte-identically across two runs.
ltl:
	$(DUNE) exec bin/hbltl.exe -- smoke
	$(DUNE) exec bin/hbltl.exe -- check R2 -v binary --fixed --json > _build/hbltl-1.json
	$(DUNE) exec bin/hbltl.exe -- check R2 -v binary --fixed --json > _build/hbltl-2.json
	cmp _build/hbltl-1.json _build/hbltl-2.json

# Partial-order-reduction gate: the qcheck parity harness (reduced and
# full explorations agree on monitor and LTL verdicts, reduced
# counterexamples replay, reduced LTS weak-trace equivalent), then the
# six-variant smoke: every requirement verdict identical full vs
# reduced, at least one variant at least halved, JSON byte-identical.
por:
	$(DUNE) exec test/main.exe -- test por
	$(DUNE) exec bin/hbverify.exe -- pa-smoke
	$(DUNE) exec bin/hbverify.exe -- pa-smoke --json > _build/hbpor-1.json
	$(DUNE) exec bin/hbverify.exe -- pa-smoke --json > _build/hbpor-2.json
	cmp _build/hbpor-1.json _build/hbpor-2.json

# Parallel-engine gate: the qcheck parity harness for the
# work-stealing engine (spaces byte-identical to Mc.Explore across
# engines x stores x domain counts, goal and truncation verdicts in
# parity), the store-compression units (hash-compaction, bitstate
# coverage estimates, collision injection), and the POR soundness
# suite including the parallel cycle proviso.
par:
	$(DUNE) exec test/main.exe -- test pexplore
	$(DUNE) exec test/main.exe -- test store
	$(DUNE) exec test/main.exe -- test por

# Resilience gate: the budget/checkpoint/degradation/quarantine suite
# (qcheck suspend/resume round trips, store-ladder degradation, raising
# successors quarantined at 4 domains), then a live interrupt smoke —
# SIGINT a running hbexplore mid-exploration, require the partial
# report (exit 4) plus a checkpoint, and resume it to a byte-identical
# result.
resilience:
	$(DUNE) exec test/main.exe -- test resilience
	$(DUNE) build bin/hbexplore.exe
	rm -f _build/hbres.ck
	timeout 300 _build/default/bin/hbexplore.exe stats -v dynamic --tmax 40 \
	  > _build/hbres-clean.out
	timeout --preserve-status -s INT 0.4 \
	  _build/default/bin/hbexplore.exe stats -v dynamic --tmax 40 \
	  --checkpoint _build/hbres.ck > _build/hbres-int.out 2>/dev/null; \
	  test $$? -eq 4
	test -f _build/hbres.ck
	timeout 300 _build/default/bin/hbexplore.exe stats -v dynamic --tmax 40 \
	  --resume _build/hbres.ck > _build/hbres-resumed.out 2>/dev/null
	cmp _build/hbres-clean.out _build/hbres-resumed.out

# Slicing gate: the qcheck parity harness (sliced and full explorations
# agree on every safety and LTL verdict, sliced counterexamples replay
# in the full model via the certificate, slice composes with the
# reduction and the parallel engine), then the six-variant slice smoke:
# verdict parity for slice alone / slice+POR / slice+POR at 4 domains,
# at least one TA variant's space at least halved, at least one sliced
# counterexample replayed, JSON byte-identical across two runs.
slice:
	$(DUNE) exec test/main.exe -- test slice
	$(DUNE) exec bin/hbverify.exe -- slice-smoke
	$(DUNE) exec bin/hbverify.exe -- slice-smoke --json > _build/hbslice-1.json
	$(DUNE) exec bin/hbverify.exe -- slice-smoke --json > _build/hbslice-2.json
	cmp _build/hbslice-1.json _build/hbslice-2.json

# Zone-engine gate: the qcheck discrete-vs-zone agreement harness (DBM
# units, random-network verdict parity, guided replay of zone
# counterexamples), the location-LU analysis suite (backward-fixpoint
# units, three-way verdict parity discrete vs global vs location LU,
# zone-count monotonicity), then the six-variant zone smoke (R1-R3
# verdict parity discrete vs dense-time in both LU modes, subsumption
# active, location LU never storing more zones, JSON byte-identical
# across two runs), the FC-suite LU A/B (verdicts match the specs in
# both modes, byte-identical JSON), a Fontana-Cleaveland spot check
# through the .xta front end, and a drift check that the shipped
# examples/fc/*.xta are exactly what the Fc registry prints.
zone:
	$(DUNE) exec test/main.exe -- test zone
	$(DUNE) exec test/main.exe -- test lubounds
	$(DUNE) exec bin/hbverify.exe -- zone-smoke
	$(DUNE) exec bin/hbverify.exe -- zone-smoke --json > _build/hbzone-1.json
	$(DUNE) exec bin/hbverify.exe -- zone-smoke --json > _build/hbzone-2.json
	cmp _build/hbzone-1.json _build/hbzone-2.json
	$(DUNE) exec bin/hbexplore.exe -- fc --zones
	$(DUNE) exec bin/hbexplore.exe -- fc --zones --json > _build/hbfczones-1.json
	$(DUNE) exec bin/hbexplore.exe -- fc --zones --json > _build/hbfczones-2.json
	cmp _build/hbfczones-1.json _build/hbfczones-2.json
	$(DUNE) exec bin/hbverify.exe -- xta examples/fc/fischer.xta --forbid P1.CS,P2.CS
	for m in fischer fischer-broken csma fddi grc leader; do \
	  $(DUNE) exec bin/hbexplore.exe -- fc $$m > _build/fc-$$m.xta && \
	  cmp _build/fc-$$m.xta examples/fc/$$m.xta || exit 1; \
	done

# Just the sequential-vs-parallel exploration comparison.
bench-parallel:
	$(DUNE) exec bench/main.exe -- --parallel-only

clean:
	$(DUNE) clean

fmt:
	$(DUNE) fmt
