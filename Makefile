DUNE ?= dune

.PHONY: all build test bench bench-parallel clean fmt

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# Full benchmark run: table regeneration check, parallel-exploration
# report, then the bechamel micro-benchmarks.
bench:
	$(DUNE) exec bench/main.exe

# Just the sequential-vs-parallel exploration comparison.
bench-parallel:
	$(DUNE) exec bench/main.exe -- --parallel-only

clean:
	$(DUNE) clean

fmt:
	$(DUNE) fmt
