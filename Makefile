DUNE ?= dune

.PHONY: all build test bench bench-parallel faults clean fmt

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# Full benchmark run: table regeneration check, parallel-exploration
# report, then the bechamel micro-benchmarks.
bench:
	$(DUNE) exec bench/main.exe

# Deterministic fault-injection campaign gate: the fixed variants must
# survive the default adversary with zero violations, the unfixed ones
# must be refuted (with a shrunk minimal schedule) at a table F point,
# and the JSON report must reproduce byte-identically.
faults:
	$(DUNE) exec bin/hbfault.exe -- smoke

# Just the sequential-vs-parallel exploration comparison.
bench-parallel:
	$(DUNE) exec bench/main.exe -- --parallel-only

clean:
	$(DUNE) clean

fmt:
	$(DUNE) fmt
